//! Warehouse-style aggregate queries over the semantic matrix.
//!
//! The aggregate result types live here together with [`RowStore`], a
//! deliberately naive row-walk implementation of the same aggregates
//! over materialized [`SemanticTuple`] rows. `RowStore` serves two
//! jobs: it is the *oracle* the proptest suite checks the compressed
//! scans against, and the *baseline* the store benchmark measures the
//! compressed scans' speedup over (the pre-columnar store answered
//! these questions with exactly this kind of walk).

use crate::matrix::TupleLayers;
use semitri_core::model::{AnnotationValue, PlaceKind, StructuredSemanticTrajectory};
use semitri_data::{LanduseCategory, RoadClass, TransportMode};
use semitri_episodes::EpisodeKind;
use semitri_geo::Timestamp;
use std::collections::HashMap;

/// Stop counts per landuse category per hour of day.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LanduseHourCounts {
    /// `counts[LanduseCategory::ordinal()][hour 0..24]`.
    pub counts: [[u64; 24]; 17],
}

impl LanduseHourCounts {
    /// Count for one `(category, hour)` cell.
    pub fn get(&self, cat: LanduseCategory, hour: usize) -> u64 {
        self.counts[cat.ordinal()][hour.min(23)]
    }

    /// Total stops counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }
}

/// Record-weighted transport-mode share per road class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModeShareByClass {
    /// `records[RoadClass::ordinal()][TransportMode ordinal]` — GPS
    /// records attributed to that (class, mode) pair; tuples with an
    /// unknown record count weigh 1.
    pub records: [[u64; 5]; 4],
}

impl ModeShareByClass {
    /// Records for one `(class, mode)` pair.
    pub fn get(&self, class: RoadClass, mode: TransportMode) -> u64 {
        let m = TransportMode::ALL
            .iter()
            .position(|&x| x == mode)
            .expect("mode in ALL");
        self.records[class.ordinal()][m]
    }

    /// Total records counted.
    pub fn total(&self) -> u64 {
        self.records.iter().flatten().sum()
    }
}

/// One POI in the visit ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoiVisit {
    /// The POI's place id.
    pub place_id: u64,
    /// The POI's label.
    pub label: String,
    /// Stop tuples that visited it.
    pub visits: u64,
}

/// Hour-of-day bucket (0..=23) of a timestamp, clamped against the
/// floating-point edge case where `rem_euclid` of a tiny negative value
/// rounds up to a full day.
#[inline]
pub(crate) fn hour_of(ts: Timestamp) -> usize {
    ((ts.time_of_day() / 3_600.0) as usize).min(23)
}

/// Ranks `(id, label) → visits` maps into a sorted top-`n` list
/// (descending visits, ascending id on ties).
pub(crate) fn rank_poi_visits(
    map: impl IntoIterator<Item = ((u64, u32), u64)>,
    labels: &[String],
    n: usize,
) -> Vec<PoiVisit> {
    let mut out: Vec<PoiVisit> = map
        .into_iter()
        .map(|((place_id, label_id), visits)| PoiVisit {
            place_id,
            label: labels[label_id as usize].clone(),
            visits,
        })
        .collect();
    out.sort_by(|a, b| b.visits.cmp(&a.visits).then(a.place_id.cmp(&b.place_id)));
    out.truncate(n);
    out
}

/// The retained row path: full [`StructuredSemanticTrajectory`] rows plus
/// their per-tuple layer rows, scanned tuple by tuple with annotation
/// lists walked per tuple — the layout and access pattern the store had
/// before the columnar engine.
#[derive(Debug, Default)]
pub struct RowStore {
    rows: Vec<RowSst>,
    by_traj: HashMap<u64, usize>,
}

/// One row-form trajectory: the SST and its aligned layer rows.
#[derive(Debug, Clone)]
pub struct RowSst {
    /// The full semantic trajectory row.
    pub sst: StructuredSemanticTrajectory,
    /// Per-tuple layer rows (same length as `sst.tuples`).
    pub layers: Vec<TupleLayers>,
}

impl RowStore {
    /// Creates an empty row store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a trajectory's rows.
    pub fn insert(&mut self, sst: StructuredSemanticTrajectory, layers: Vec<TupleLayers>) {
        assert_eq!(sst.tuples.len(), layers.len(), "layer rows must align");
        let id = sst.trajectory_id;
        let row = RowSst { sst, layers };
        match self.by_traj.get(&id) {
            Some(&i) => self.rows[i] = row,
            None => {
                self.by_traj.insert(id, self.rows.len());
                self.rows.push(row);
            }
        }
    }

    /// Stored trajectory count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row-walk: stop tuples per landuse category per hour of day.
    pub fn stops_per_landuse_hour(&self) -> LanduseHourCounts {
        let mut out = LanduseHourCounts::default();
        for row in &self.rows {
            for (t, l) in row.sst.tuples.iter().zip(&row.layers) {
                if l.kind == EpisodeKind::Stop {
                    if let Some(cat) = l.landuse {
                        out.counts[cat.ordinal()][hour_of(t.span.start)] += 1;
                    }
                }
            }
        }
        out
    }

    /// Row-walk: record-weighted mode share per road class.
    pub fn mode_share_by_road_class(&self) -> ModeShareByClass {
        let mut out = ModeShareByClass::default();
        for row in &self.rows {
            for (t, l) in row.sst.tuples.iter().zip(&row.layers) {
                let Some(class) = l.road_class else { continue };
                // first mode annotation of the tuple, like the matrix's
                // primary mode label
                let mode = t.annotations.iter().find_map(|a| match a.value {
                    AnnotationValue::Mode(m) => Some(m),
                    _ => None,
                });
                let Some(mode) = mode else { continue };
                let m = TransportMode::ALL
                    .iter()
                    .position(|&x| x == mode)
                    .expect("mode in ALL");
                out.records[class.ordinal()][m] += u64::from(l.records).max(1);
            }
        }
        out
    }

    /// Row-walk: top-`n` POIs by stop-tuple visits.
    pub fn top_poi_visits(&self, n: usize) -> Vec<PoiVisit> {
        let mut visits: HashMap<(u64, String), u64> = HashMap::new();
        for row in &self.rows {
            for (t, l) in row.sst.tuples.iter().zip(&row.layers) {
                if l.kind != EpisodeKind::Stop {
                    continue;
                }
                if let Some(p) = &t.place {
                    if p.kind == PlaceKind::Point {
                        *visits.entry((p.id, p.label.clone())).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut out: Vec<PoiVisit> = visits
            .into_iter()
            .map(|((place_id, label), visits)| PoiVisit {
                place_id,
                label,
                visits,
            })
            .collect();
        out.sort_by(|a, b| b.visits.cmp(&a.visits).then(a.place_id.cmp(&b.place_id)));
        out.truncate(n);
        out
    }

    /// Row-walk: trajectory ids containing a mode annotation, sorted —
    /// the store's original `ssts_with_mode` scan.
    pub fn ssts_with_mode(&self, mode: TransportMode) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .rows
            .iter()
            .filter(|r| {
                r.sst.tuples.iter().any(|t| {
                    t.annotations
                        .iter()
                        .any(|a| matches!(a.value, AnnotationValue::Mode(m) if m == mode))
                })
            })
            .map(|r| r.sst.trajectory_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Row-walk: per-mode / per-activity annotation counts — the store's
    /// original `annotation_statistics` scan.
    pub fn annotation_statistics(&self) -> crate::AnnotationStats {
        let mut stats = crate::AnnotationStats::default();
        for row in &self.rows {
            for t in &row.sst.tuples {
                for a in &t.annotations {
                    match a.value {
                        AnnotationValue::Mode(m) => {
                            let m = TransportMode::ALL
                                .iter()
                                .position(|&x| x == m)
                                .expect("mode in ALL");
                            stats.mode_tuples[m] += 1;
                        }
                        AnnotationValue::Activity(c) => {
                            stats.activity_tuples[c.ordinal()] += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        stats
    }
}
