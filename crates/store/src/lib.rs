//! # semitri-store — the Semantic Trajectory Store
//!
//! The paper persists SeMiTri's outputs in PostgreSQL/PostGIS with
//! "dedicated tables for GPS records, trajectories, stops/moves, and
//! annotations" (§5.1). This crate is the embedded Rust equivalent,
//! built warehouse-style on compressed columns:
//!
//! * [`codec`] — a dependency-free, length-prefixed binary codec for the
//!   store's record types;
//! * [`column`] — bit-level primitives: zigzag varints, fixed-width
//!   bitpacked vectors, and patched-frame-of-reference (PFOR) integer
//!   compression;
//! * [`fixcol`] — the fix-column block format: delta-of-delta
//!   timestamps, centimeter fixed-point delta positions, per-block
//!   min/max + bbox summaries. Timestamps round-trip bit-exactly;
//!   positions to within half a quantum;
//! * [`matrix`] — the compressed semantic matrix: per-layer label
//!   dictionaries with labels bitpacked at ⌈log₂|dict|⌉ bits in
//!   contiguous per-layer streams;
//! * [`olap`] — warehouse aggregate types plus [`olap::RowStore`], the
//!   retained row-walk path used as proptest oracle and benchmark
//!   baseline;
//! * [`store`] — the [`SemanticTrajectoryStore`] over all of the above:
//!   trajectory metadata, episode columns with block-skipping time /
//!   spatial queries, compressed fixes and semantic layers, OLAP
//!   aggregates, an in-memory mode, and a *durable* mode that appends
//!   every write to a synced log file — the realistic write cost behind
//!   the storage bars of Fig. 17;
//! * [`export`] — KML export of annotated trajectories, standing in for
//!   the paper's Google-Earth web interface (Figs. 15–16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod column;
pub mod export;
pub mod fixcol;
pub mod matrix;
pub mod olap;
pub mod store;

pub use matrix::TupleLayers;
pub use olap::{LanduseHourCounts, ModeShareByClass, PoiVisit, RowStore};
pub use store::{
    derive_tuple_layers, AnnotationStats, SemanticTrajectoryStore, StoreError,
    StoreMetricsSnapshot, StoredEpisode, TrajectoryMeta,
};
