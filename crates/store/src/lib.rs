//! # semitri-store — the Semantic Trajectory Store
//!
//! The paper persists SeMiTri's outputs in PostgreSQL/PostGIS with
//! "dedicated tables for GPS records, trajectories, stops/moves, and
//! annotations" (§5.1). This crate is the embedded Rust equivalent:
//!
//! * [`codec`] — a dependency-free, length-prefixed binary codec for the
//!   store's row types;
//! * [`store`] — the [`SemanticTrajectoryStore`]: tables for trajectory
//!   metadata, episodes and structured semantic trajectories, with
//!   time-range and spatial queries, an in-memory mode, and a *durable*
//!   mode that appends every write to a synced log file — the realistic
//!   write cost behind the storage bars of Fig. 17;
//! * [`export`] — KML export of annotated trajectories, standing in for
//!   the paper's Google-Earth web interface (Figs. 15–16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod export;
pub mod store;

pub use store::{
    AnnotationStats, SemanticTrajectoryStore, StoreError, StoredEpisode, TrajectoryMeta,
};
