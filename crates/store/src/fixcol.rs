//! Fix-column blocks: the compressed columnar layout for raw GPS fixes.
//!
//! Fixes are stored per trajectory in blocks of up to [`BLOCK_LEN`]
//! records. Within a block each column compresses independently:
//!
//! * **timestamps** — millisecond fixed point, first value + first delta
//!   as zigzag varints, then delta-of-delta residuals PFOR-bitpacked (a
//!   metronomic 1 Hz feed packs to ~0 bits/fix). If any timestamp does
//!   not survive the millisecond quantization *bit-exactly*, the whole
//!   column falls back to raw `f64` bits — decoded timestamps are always
//!   identical to what was stored.
//! * **positions** — centimeter fixed point (`round(x·100)`), first
//!   value as zigzag varint, then deltas PFOR-bitpacked. This is the one
//!   deliberately lossy column: decoded coordinates differ from the
//!   input by at most half the quantum (5 mm). Non-finite or
//!   out-of-range coordinates fall back to raw `f64` bits for the axis.
//!
//! Every in-memory block carries a summary (count, time min/max, bbox)
//! so scans can skip whole blocks without touching the payload. The
//! summary is derivable, so the serialized form carries only count and
//! flags — loaders re-derive the rest while validating the columns.

use crate::column::{pfor_decode, pfor_encode, read_varint, unzigzag, write_varint, zigzag};
use semitri_data::GpsRecord;
use semitri_geo::{Point, Rect, Timestamp};
use std::io::{self, Read};

/// Maximum fixes per block.
pub const BLOCK_LEN: usize = 256;

/// Position quantum in meters (centimeter fixed point).
pub const POSITION_QUANTUM: f64 = 0.01;

/// Bytes a fix occupies in the uncompressed row layout (`t, x, y` as
/// `f64` — what [`crate::SemanticTrajectoryStore`] kept per record
/// before the columnar engine).
pub const ROW_FIX_BYTES: usize = 24;

const FLAG_TIME_RAW: u8 = 1;
const FLAG_X_RAW: u8 = 2;
const FLAG_Y_RAW: u8 = 4;

/// Largest |coordinate| (meters) eligible for fixed-point encoding; past
/// this the centimeter grid itself loses integer exactness.
const MAX_FIXED_COORD: f64 = 1.0e12;
/// Largest |timestamp| (seconds) eligible for millisecond fixed point.
const MAX_FIXED_TIME: f64 = 1.0e14;

/// One encoded block of fixes plus its scan summary.
#[derive(Debug, Clone)]
pub struct FixBlock {
    /// Fix count (1 ..= [`BLOCK_LEN`]).
    pub count: u32,
    /// Earliest timestamp in the block.
    pub t_min: Timestamp,
    /// Latest timestamp in the block.
    pub t_max: Timestamp,
    /// Bounding box of the block's positions.
    pub bbox: Rect,
    /// Compressed payload (summary + columns), self-contained.
    pub bytes: Vec<u8>,
}

impl FixBlock {
    /// Encodes one block from `fixes` (at most [`BLOCK_LEN`] records).
    ///
    /// # Panics
    /// Panics when `fixes` is empty or longer than [`BLOCK_LEN`].
    pub fn encode(fixes: &[GpsRecord]) -> Self {
        assert!(!fixes.is_empty() && fixes.len() <= BLOCK_LEN);
        let count = fixes.len() as u32;
        let mut t_min = f64::INFINITY;
        let mut t_max = f64::NEG_INFINITY;
        let mut bbox = Rect::EMPTY;
        for f in fixes {
            t_min = t_min.min(f.t.0);
            t_max = t_max.max(f.t.0);
            bbox.expand_to(f.point);
        }

        let mut flags = 0u8;
        let mut out = Vec::with_capacity(fixes.len() * 4 + 64);

        // --- timestamp column ---
        let ts: Vec<f64> = fixes.iter().map(|f| f.t.0).collect();
        let ms = quantize_exact(&ts, 1_000.0, MAX_FIXED_TIME);
        let time_payload = match &ms {
            Some(ms) => encode_fixed_series(ms, true),
            None => {
                flags |= FLAG_TIME_RAW;
                raw_f64(&ts)
            }
        };

        // --- position columns ---
        let xs: Vec<f64> = fixes.iter().map(|f| f.point.x).collect();
        let ys: Vec<f64> = fixes.iter().map(|f| f.point.y).collect();
        let x_payload = match quantize(&xs, 100.0, MAX_FIXED_COORD) {
            Some(cm) => encode_fixed_series(&cm, false),
            None => {
                flags |= FLAG_X_RAW;
                raw_f64(&xs)
            }
        };
        let y_payload = match quantize(&ys, 100.0, MAX_FIXED_COORD) {
            Some(cm) => encode_fixed_series(&cm, false),
            None => {
                flags |= FLAG_Y_RAW;
                raw_f64(&ys)
            }
        };

        // header: count u16 LE, flags u8. The min/max time and bbox
        // summaries are fully derivable from the columns, so they are
        // kept in memory for block skipping but never serialized —
        // `from_bytes` decodes every column for validation anyway and
        // re-derives them for free.
        out.extend_from_slice(&(count as u16).to_le_bytes());
        out.push(flags);
        out.extend_from_slice(&time_payload);
        out.extend_from_slice(&x_payload);
        out.extend_from_slice(&y_payload);

        Self {
            count,
            t_min: Timestamp(t_min),
            t_max: Timestamp(t_max),
            bbox,
            bytes: out,
        }
    }

    /// Parses a payload produced by [`FixBlock::encode`], validating the
    /// framing and re-deriving the summary fields from the decoded
    /// columns (summaries are never serialized — see [`FixBlock::encode`]).
    ///
    /// # Errors
    /// Fails on truncated or malformed payloads.
    pub fn from_bytes(bytes: Vec<u8>) -> io::Result<Self> {
        let mut src = bytes.as_slice();
        let count = read_header(&mut src)?;
        if count == 0 || count as usize > BLOCK_LEN {
            return Err(bad("fix block count out of range"));
        }
        // decode fully once: validates the columns and yields the fixes
        // the summaries are derived from
        let mut block = Self {
            count,
            t_min: Timestamp(f64::INFINITY),
            t_max: Timestamp(f64::NEG_INFINITY),
            bbox: Rect::EMPTY,
            bytes,
        };
        let mut scratch = Vec::with_capacity(count as usize);
        block.decode(&mut scratch)?;
        for f in &scratch {
            block.t_min = Timestamp(block.t_min.0.min(f.t.0));
            block.t_max = Timestamp(block.t_max.0.max(f.t.0));
            block.bbox.expand_to(f.point);
        }
        Ok(block)
    }

    /// Appends the block's fixes to `out`.
    ///
    /// # Errors
    /// Fails on truncated or malformed payloads.
    pub fn decode(&self, out: &mut Vec<GpsRecord>) -> io::Result<()> {
        let mut src = self.bytes.as_slice();
        let count = read_header(&mut src)? as usize;
        let flags = self.bytes[2];
        let ts = decode_column(&mut src, count, flags & FLAG_TIME_RAW != 0, 1_000.0, true)?;
        let xs = decode_column(&mut src, count, flags & FLAG_X_RAW != 0, 100.0, false)?;
        let ys = decode_column(&mut src, count, flags & FLAG_Y_RAW != 0, 100.0, false)?;
        out.reserve(count);
        for i in 0..count {
            out.push(GpsRecord::new(Point::new(xs[i], ys[i]), Timestamp(ts[i])));
        }
        Ok(())
    }

    /// Encoded payload size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.bytes.len()
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_header(src: &mut &[u8]) -> io::Result<u32> {
    let mut h = [0u8; 3];
    src.read_exact(&mut h)?;
    Ok(u32::from(u16::from_le_bytes([h[0], h[1]])))
}

/// Quantizes `values` by `scale`, returning `None` when any value is
/// non-finite or out of fixed-point range.
fn quantize(values: &[f64], scale: f64, max_abs: f64) -> Option<Vec<i64>> {
    let mut out = Vec::with_capacity(values.len());
    for &v in values {
        if !v.is_finite() || v.abs() > max_abs {
            return None;
        }
        out.push((v * scale).round() as i64);
    }
    Some(out)
}

/// Like [`quantize`] but additionally requires the quantization to be
/// bit-exact invertible (`(q as f64) / scale == v`): used for the
/// timestamp column's losslessness guarantee.
fn quantize_exact(values: &[f64], scale: f64, max_abs: f64) -> Option<Vec<i64>> {
    let q = quantize(values, scale, max_abs)?;
    for (&v, &qi) in values.iter().zip(&q) {
        if (qi as f64 / scale).to_bits() != v.to_bits() {
            return None;
        }
    }
    Some(q)
}

/// Encodes a quantized series: first value (zigzag varint), then either
/// delta-of-delta (`dod = true`, timestamps) or plain delta residuals
/// PFOR-bitpacked.
fn encode_fixed_series(q: &[i64], dod: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(q.len() * 2 + 16);
    write_varint(&mut out, zigzag(q[0]));
    if q.len() == 1 {
        return out;
    }
    let mut residuals = Vec::with_capacity(q.len() - 1);
    if dod {
        let first_delta = q[1].wrapping_sub(q[0]);
        write_varint(&mut out, zigzag(first_delta));
        let mut prev_delta = first_delta;
        for w in q.windows(2).skip(1) {
            let delta = w[1].wrapping_sub(w[0]);
            residuals.push(zigzag(delta.wrapping_sub(prev_delta)));
            prev_delta = delta;
        }
    } else {
        for w in q.windows(2) {
            residuals.push(zigzag(w[1].wrapping_sub(w[0])));
        }
    }
    out.extend_from_slice(&pfor_encode(&residuals));
    out
}

fn decode_fixed_series(src: &mut impl Read, count: usize, dod: bool) -> io::Result<Vec<i64>> {
    let mut out = Vec::with_capacity(count);
    let first = unzigzag(read_varint(src)?);
    out.push(first);
    if count == 1 {
        return Ok(out);
    }
    let n_residuals;
    let mut prev_delta = 0i64;
    if dod {
        prev_delta = unzigzag(read_varint(src)?);
        out.push(first.wrapping_add(prev_delta));
        n_residuals = count - 2;
        if count == 2 {
            return Ok(out);
        }
    } else {
        n_residuals = count - 1;
    }
    let mut residuals = Vec::with_capacity(n_residuals);
    pfor_decode(src, n_residuals, &mut residuals)?;
    for r in residuals {
        let last = *out.last().expect("nonempty");
        let next = if dod {
            prev_delta = prev_delta.wrapping_add(unzigzag(r));
            last.wrapping_add(prev_delta)
        } else {
            last.wrapping_add(unzigzag(r))
        };
        out.push(next);
    }
    Ok(out)
}

fn raw_f64(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_column(
    src: &mut impl Read,
    count: usize,
    raw: bool,
    scale: f64,
    dod: bool,
) -> io::Result<Vec<f64>> {
    if raw {
        let mut out = Vec::with_capacity(count);
        let mut b = [0u8; 8];
        for _ in 0..count {
            src.read_exact(&mut b)?;
            out.push(f64::from_le_bytes(b));
        }
        Ok(out)
    } else {
        let q = decode_fixed_series(src, count, dod)?;
        Ok(q.into_iter().map(|v| v as f64 / scale).collect())
    }
}

/// Per-trajectory compressed fix storage with running compression stats.
#[derive(Debug, Default)]
pub struct FixColumnStore {
    /// `(trajectory_id, block)` in append order; a trajectory's blocks
    /// are contiguous per `append` call and time-ordered within a call.
    blocks: Vec<(u64, FixBlock)>,
    fix_count: u64,
    raw_bytes: u64,
    compressed_bytes: u64,
}

impl FixColumnStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `fixes` into blocks appended under `trajectory_id`,
    /// returning the new blocks for durable logging.
    pub fn append(&mut self, trajectory_id: u64, fixes: &[GpsRecord]) -> Vec<FixBlock> {
        let mut added = Vec::with_capacity(fixes.len().div_ceil(BLOCK_LEN));
        for chunk in fixes.chunks(BLOCK_LEN) {
            let block = FixBlock::encode(chunk);
            self.push_block(trajectory_id, block.clone());
            added.push(block);
        }
        added
    }

    /// Registers an already-encoded block (durable replay path).
    pub fn push_block(&mut self, trajectory_id: u64, block: FixBlock) {
        self.fix_count += u64::from(block.count);
        self.raw_bytes += u64::from(block.count) * ROW_FIX_BYTES as u64;
        self.compressed_bytes += block.bytes.len() as u64;
        self.blocks.push((trajectory_id, block));
    }

    /// Decodes every fix of one trajectory, in storage order.
    ///
    /// # Errors
    /// Fails when a stored payload is corrupt.
    pub fn fixes_of(&self, trajectory_id: u64) -> io::Result<Vec<GpsRecord>> {
        let mut out = Vec::new();
        for (tid, block) in &self.blocks {
            if *tid == trajectory_id {
                block.decode(&mut out)?;
            }
        }
        Ok(out)
    }

    /// Iterates all blocks (trajectory id + block).
    pub fn blocks(&self) -> impl Iterator<Item = &(u64, FixBlock)> {
        self.blocks.iter()
    }

    /// Total stored fixes.
    pub fn fix_count(&self) -> u64 {
        self.fix_count
    }

    /// Block count.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes the fixes would occupy in the row layout.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Bytes of compressed payload actually held.
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64, x: f64, y: f64) -> GpsRecord {
        GpsRecord::new(Point::new(x, y), Timestamp(t))
    }

    #[test]
    fn metronomic_block_is_tiny() {
        // 1 Hz fleet feed, car at ~10 m/s: the target regime for the
        // ≤ 4 bytes/fix acceptance bar.
        let fixes: Vec<GpsRecord> = (0..256)
            .map(|i| {
                rec(
                    1_000.0 + i as f64,
                    500.0 + i as f64 * 9.7,
                    800.0 - i as f64 * 3.1,
                )
            })
            .collect();
        let block = FixBlock::encode(&fixes);
        assert!(
            block.encoded_bytes() <= 4 * fixes.len(),
            "{} bytes for {} fixes",
            block.encoded_bytes(),
            fixes.len()
        );
        let mut out = Vec::new();
        block.decode(&mut out).unwrap();
        assert_eq!(out.len(), fixes.len());
        for (a, b) in fixes.iter().zip(&out) {
            assert_eq!(a.t.0.to_bits(), b.t.0.to_bits(), "timestamps exact");
            assert!((a.point.x - b.point.x).abs() <= POSITION_QUANTUM / 2.0 + 1e-9);
            assert!((a.point.y - b.point.y).abs() <= POSITION_QUANTUM / 2.0 + 1e-9);
        }
    }

    #[test]
    fn jittered_timestamps_fall_back_to_raw_and_stay_exact() {
        let fixes: Vec<GpsRecord> = (0..100)
            .map(|i| rec(1_000.0 + i as f64 * 1.000_000_1, i as f64, -(i as f64)))
            .collect();
        let block = FixBlock::encode(&fixes);
        let mut out = Vec::new();
        block.decode(&mut out).unwrap();
        for (a, b) in fixes.iter().zip(&out) {
            assert_eq!(a.t.0.to_bits(), b.t.0.to_bits());
        }
    }

    #[test]
    fn non_finite_positions_fall_back_to_raw() {
        let mut fixes: Vec<GpsRecord> = (0..10).map(|i| rec(i as f64, i as f64, 0.0)).collect();
        fixes[3].point.x = f64::NAN;
        fixes[7].point.y = f64::INFINITY;
        let block = FixBlock::encode(&fixes);
        let mut out = Vec::new();
        block.decode(&mut out).unwrap();
        assert!(out[3].point.x.is_nan());
        assert_eq!(out[7].point.y, f64::INFINITY);
        assert_eq!(out[5].point.x, 5.0);
    }

    #[test]
    fn summaries_cover_block() {
        let fixes: Vec<GpsRecord> = (0..50)
            .map(|i| rec(10.0 + i as f64, i as f64 * 2.0, 100.0 - i as f64))
            .collect();
        let block = FixBlock::encode(&fixes);
        assert_eq!(block.t_min.0, 10.0);
        assert_eq!(block.t_max.0, 59.0);
        assert_eq!(block.bbox.min_x, 0.0);
        assert_eq!(block.bbox.max_x, 98.0);
        // from_bytes re-derives the same summary
        let parsed = FixBlock::from_bytes(block.bytes.clone()).unwrap();
        assert_eq!(parsed.count, 50);
        assert_eq!(parsed.t_min.0, 10.0);
        assert_eq!(parsed.bbox.max_y, 100.0);
    }

    #[test]
    fn truncated_payload_rejected() {
        let fixes: Vec<GpsRecord> = (0..30).map(|i| rec(i as f64, i as f64, i as f64)).collect();
        let block = FixBlock::encode(&fixes);
        let mut cut = block.bytes.clone();
        cut.truncate(cut.len() - 4);
        assert!(FixBlock::from_bytes(cut).is_err());
    }

    #[test]
    fn store_appends_and_reads_back() {
        let mut store = FixColumnStore::new();
        let fixes: Vec<GpsRecord> = (0..600)
            .map(|i| rec(i as f64, i as f64 * 1.5, i as f64 * -0.5))
            .collect();
        let blocks = store.append(7, &fixes);
        assert_eq!(blocks.len(), 3); // 256 + 256 + 88
        store.append(8, &fixes[..10]);
        let back = store.fixes_of(7).unwrap();
        assert_eq!(back.len(), 600);
        assert_eq!(store.fix_count(), 610);
        assert!(store.compressed_bytes() < store.raw_bytes() / 4);
    }
}
