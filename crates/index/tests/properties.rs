//! Property-based tests: the R*-tree and grid must agree with brute force.

use proptest::prelude::*;
use semitri_geo::{Point, Rect};
use semitri_index::{
    FrozenNearestScratch, FrozenRangeScratch, GridIndex, RStarParams, RStarTree, RangeScratch,
};

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (
        -1000.0..1000.0f64,
        -1000.0..1000.0f64,
        0.0..50.0f64,
        0.0..50.0f64,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_query_agrees_with_brute_force(
        rects in proptest::collection::vec(rect_strategy(), 1..200),
        query in rect_strategy(),
    ) {
        let mut tree = RStarTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        tree.check_invariants();

        let mut expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        let mut got: Vec<usize> = tree.query(&query).iter().map(|&(_, &i)| i).collect();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(expected, got);
    }

    #[test]
    fn rtree_scratch_query_is_order_identical(
        rects in proptest::collection::vec(rect_strategy(), 1..250),
        queries in proptest::collection::vec(rect_strategy(), 1..8),
    ) {
        // both insertion-built and bulk-loaded trees: the scratch-threaded
        // iterative traversal must visit the same items in the same order
        // as the recursive one, with the scratch reused across queries
        let mut inc = RStarTree::new();
        for (i, r) in rects.iter().enumerate() {
            inc.insert(*r, i);
        }
        let bulk = RStarTree::bulk_load(rects.iter().cloned().enumerate().map(|(i, r)| (r, i)).collect());
        for tree in [&inc, &bulk] {
            let mut scratch = RangeScratch::new();
            for q in &queries {
                let mut recursive: Vec<usize> = Vec::new();
                tree.for_each_in(q, |_, &i| recursive.push(i));
                let mut iterative: Vec<usize> = Vec::new();
                tree.for_each_in_with(&mut scratch, q, |_, &i| iterative.push(i));
                prop_assert_eq!(recursive, iterative);
            }
        }
    }

    #[test]
    fn rtree_bulk_load_agrees_with_incremental(
        rects in proptest::collection::vec(rect_strategy(), 1..300),
        query in rect_strategy(),
    ) {
        let bulk = RStarTree::bulk_load(rects.iter().cloned().enumerate().map(|(i, r)| (r, i)).collect());
        bulk.check_invariants();
        prop_assert_eq!(bulk.len(), rects.len());

        let mut expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        let mut got: Vec<usize> = bulk.query(&query).iter().map(|&(_, &i)| i).collect();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(expected, got);
    }

    #[test]
    fn rtree_small_nodes_still_correct(
        rects in proptest::collection::vec(rect_strategy(), 1..150),
        query in rect_strategy(),
    ) {
        // tiny fan-out stresses splits and reinserts hard
        let params = RStarParams { max_entries: 4, min_entries: 2, reinsert_count: 1 };
        let mut tree = RStarTree::with_params(params);
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), rects.len());
        let mut expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        let mut got: Vec<usize> = tree.query(&query).iter().map(|&(_, &i)| i).collect();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(expected, got);
    }

    #[test]
    fn rtree_nearest_matches_brute_force(
        pts in proptest::collection::vec((-500.0..500.0f64, -500.0..500.0f64), 1..150),
        probe in (-600.0..600.0f64, -600.0..600.0f64),
        k in 1usize..8,
    ) {
        let probe = Point::new(probe.0, probe.1);
        let mut tree = RStarTree::new();
        for &(x, y) in &pts {
            let p = Point::new(x, y);
            tree.insert(Rect::from_point(p), p);
        }
        let got = tree.nearest_by(probe, k, |q| q.distance(probe));
        let mut dists: Vec<f64> = pts.iter().map(|&(x, y)| Point::new(x, y).distance(probe)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = dists.into_iter().take(k).collect();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert!((g.0 - e).abs() < 1e-9, "got {} expected {}", g.0, e);
        }
    }

    #[test]
    fn frozen_range_is_result_and_order_identical(
        rects in proptest::collection::vec(rect_strategy(), 1..250),
        queries in proptest::collection::vec(rect_strategy(), 1..8),
    ) {
        // the frozen snapshot must reproduce the dynamic tree's range
        // results bit for bit — the same items in the same visit order —
        // for trees built by incremental insert AND by STR bulk load,
        // including a tree that has seen removals before freezing
        let mut inc = RStarTree::new();
        for (i, r) in rects.iter().enumerate() {
            inc.insert(*r, i);
        }
        let bulk = RStarTree::bulk_load(
            rects.iter().cloned().enumerate().map(|(i, r)| (r, i)).collect(),
        );
        let mut pruned = inc.clone();
        for (i, r) in rects.iter().enumerate().step_by(3) {
            pruned.remove_one(r, |&v| v == i);
        }
        for tree in [inc, bulk, pruned] {
            let frozen = tree.clone().freeze();
            prop_assert_eq!(frozen.len(), tree.len());
            prop_assert_eq!(frozen.height(), tree.height());
            prop_assert_eq!(frozen.bbox(), tree.bbox());
            let mut scratch = FrozenRangeScratch::new();
            for q in &queries {
                let mut dynamic: Vec<usize> = Vec::new();
                tree.for_each_in(q, |_, &i| dynamic.push(i));
                let mut snap: Vec<usize> = Vec::new();
                frozen.for_each_in_with(&mut scratch, q, |_, &i| snap.push(i));
                prop_assert_eq!(dynamic, snap);
            }
        }
    }

    #[test]
    fn frozen_chunked_range_matches_scalar_reference(
        rects in proptest::collection::vec(rect_strategy(), 1..400),
        queries in proptest::collection::vec(rect_strategy(), 1..8),
    ) {
        // the 8-wide mask-then-resolve scan must visit the same items in
        // the same order as the retained scalar reference loop, for every
        // leaf-slab length and remainder-tail residue the generated trees
        // produce (1..400 items sweeps slabs across the chunk boundary).
        // The lane body is pinned explicitly: `for_each_in_with` is a
        // compile-time dispatch and may select the scalar body on
        // narrow-SIMD build targets.
        let mut inc = RStarTree::new();
        for (i, r) in rects.iter().enumerate() {
            inc.insert(*r, i);
        }
        let bulk = RStarTree::bulk_load(
            rects.iter().cloned().enumerate().map(|(i, r)| (r, i)).collect(),
        );
        for tree in [inc, bulk] {
            let frozen = tree.freeze();
            let mut s_chunked = FrozenRangeScratch::new();
            let mut s_scalar = FrozenRangeScratch::new();
            for q in &queries {
                let mut chunked: Vec<usize> = Vec::new();
                frozen.for_each_in_lanes_with(&mut s_chunked, q, |_, &i| chunked.push(i));
                let mut scalar: Vec<usize> = Vec::new();
                frozen.for_each_in_scalar_with(&mut s_scalar, q, |_, &i| scalar.push(i));
                prop_assert_eq!(chunked, scalar);
            }
        }
    }

    #[test]
    fn frozen_knn_is_result_and_order_identical(
        pts in proptest::collection::vec((-500.0..500.0f64, -500.0..500.0f64), 1..150),
        probes in proptest::collection::vec((-600.0..600.0f64, -600.0..600.0f64), 1..6),
        k in 1usize..8,
    ) {
        // best-first kNN must pop candidates in the same order through the
        // frozen heap as through the dynamic one — including equal-distance
        // ties, which both sides break by identical push sequence
        let mut inc = RStarTree::new();
        for &(x, y) in &pts {
            let p = Point::new(x, y);
            inc.insert(Rect::from_point(p), p);
        }
        let bulk = RStarTree::bulk_load(
            pts.iter()
                .map(|&(x, y)| (Rect::from_point(Point::new(x, y)), Point::new(x, y)))
                .collect(),
        );
        for tree in [inc, bulk] {
            let frozen = tree.clone().freeze();
            let mut scratch = FrozenNearestScratch::new();
            for &(px, py) in &probes {
                let probe = Point::new(px, py);
                let dynamic: Vec<(f64, Point)> = tree
                    .nearest_by(probe, k, |q| q.distance(probe))
                    .into_iter()
                    .map(|(d, &p)| (d, p))
                    .collect();
                let snap: Vec<(f64, Point)> = frozen
                    .nearest_by_with(&mut scratch, probe, k, |q| q.distance(probe))
                    .into_iter()
                    .map(|(d, &p)| (d, p))
                    .collect();
                prop_assert_eq!(dynamic, snap);
            }
        }
    }

    #[test]
    fn frozen_within_radius_is_identical(
        pts in proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..150),
        probe in (0.0..1000.0f64, 0.0..1000.0f64),
        radius in 0.0..300.0f64,
    ) {
        let probe = Point::new(probe.0, probe.1);
        let mut tree = RStarTree::new();
        for (i, &(x, y)) in pts.iter().enumerate() {
            tree.insert(Rect::from_point(Point::new(x, y)), i);
        }
        let frozen = tree.clone().freeze();
        let mut dynamic: Vec<usize> = Vec::new();
        tree.for_each_within_radius(probe, radius, |_, &i| dynamic.push(i));
        let mut snap: Vec<usize> = Vec::new();
        frozen.for_each_within_radius(probe, radius, |_, &i| snap.push(i));
        prop_assert_eq!(dynamic, snap);
    }

    #[test]
    fn grid_within_agrees_with_brute_force(
        pts in proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 0..200),
        probe in (0.0..1000.0f64, 0.0..1000.0f64),
        radius in 0.0..300.0f64,
        cell in 5.0..200.0f64,
    ) {
        let probe = Point::new(probe.0, probe.1);
        let mut grid = GridIndex::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), cell);
        for (i, &(x, y)) in pts.iter().enumerate() {
            grid.insert(Point::new(x, y), i);
        }
        let mut got: Vec<usize> = grid.within(probe, radius).iter().map(|&(_, &i)| i).collect();
        let mut expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| Point::new(x, y).distance(probe) <= radius)
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn rtree_interleaved_inserts_and_removes_preserve_invariants(
        rects in proptest::collection::vec(rect_strategy(), 8..120),
        extra in proptest::collection::vec(rect_strategy(), 1..40),
    ) {
        // tiny fan-out so removals condense nodes (and eventually shrink
        // the root) after only a handful of operations
        let params = RStarParams { max_entries: 4, min_entries: 2, reinsert_count: 1 };
        let mut tree = RStarTree::with_params(params);
        let mut live: Vec<(Rect, usize)> = Vec::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
            live.push((*r, i));
        }
        tree.check_invariants();

        // interleave: remove two present items, insert one new, repeat
        let mut next_id = rects.len();
        let mut extras = extra.iter();
        while !live.is_empty() {
            for _ in 0..2 {
                let Some((r, id)) = live.pop() else { break };
                prop_assert_eq!(tree.remove_one(&r, |&v| v == id), Some(id), "item {} missing", id);
                tree.check_invariants();
            }
            if let Some(&r) = extras.next() {
                tree.insert(r, next_id);
                live.push((r, next_id));
                next_id += 1;
                tree.check_invariants();
            }
        }

        // drained through every condense/root-shrink on the way down
        prop_assert!(tree.is_empty(), "tree still holds {} items", tree.len());
        tree.check_invariants();
        // removing from the empty tree is a clean miss
        prop_assert_eq!(tree.remove_one(&rects[0], |_| true), None);
    }
}
