//! A precomputed per-cell matching oracle over a frozen R\*-tree.
//!
//! The annotation hot paths ask the segment/POI indexes the *same shape*
//! of question millions of times: "every item whose box intersects a
//! fixed-radius window around this point". PR 4's last-cell candidate
//! cache showed that consecutive GPS fixes overwhelmingly reuse one grid
//! cell's answer; [`CellOracle`] takes the next step and materializes the
//! answer for **every** cell at build time, so the per-fix query becomes
//! an O(1) slab lookup instead of a tree walk:
//!
//! * a uniform grid is laid over the frozen tree's bounding box;
//! * for each cell, the frozen tree is queried once with the cell's
//!   *catchment window* — the cell rectangle inflated by the query
//!   radius — and the hits are appended to one contiguous slab;
//! * cells index the slab through CSR `u32` offsets, so a lookup is two
//!   loads and a slice.
//!
//! **Order identity.** Each per-cell list is gathered by a single frozen
//! range query, so it preserves the tree's depth-first visit order. For a
//! point `p` in the cell, the per-point window `p ± r` is contained in
//! the catchment window, and an entry's box intersecting the sub-window
//! implies every ancestor box does too — so filtering the cell list with
//! the per-point `bbox ∩ window(p)` test yields *exactly* the entries a
//! direct per-point tree query would visit, in the same order. Readers
//! that apply that filter (the map matcher does) are bitwise
//! result-identical to the tree path; the unit tests and the core
//! property suite assert it.
//!
//! **Clamped border cells.** Real feeds contain fixes outside the indexed
//! area (GPS noise at the city edge, tracks leaving the map). A plain
//! grid would clamp them into a border cell whose catchment was computed
//! for in-bounds points only, silently dropping candidates the tree path
//! would find. The oracle instead extends every border cell's catchment
//! *outward* by a configurable margin and answers [`None`] for points
//! beyond it — the caller falls back to the tree for those, keeping the
//! identity contract exact everywhere.

use crate::frozen::{FrozenRStarTree, FrozenRangeScratch};
use semitri_geo::{Point, Rect};

/// Margin (meters) beyond the indexed bounds within which the default
/// oracle still answers; farther fixes fall back to the tree path.
pub const DEFAULT_ORACLE_MARGIN_M: f64 = 250.0;

/// Whether a read path precomputes its per-cell candidate oracle.
///
/// Sibling of [`IndexMode`](crate::IndexMode): the pipeline's indexes are
/// write-once/read-millions, so precomputing is the default; disabling it
/// keeps the pure frozen/dynamic tree path, which doubles as the identity
/// oracle in tests and saves the arena memory on tiny deployments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OracleMode {
    /// Materialize per-cell candidate slabs at build time (default).
    /// Points up to `margin_m` meters outside the indexed bounds are
    /// served by the (margin-inflated) border cells; farther points fall
    /// back to the tree.
    Precomputed {
        /// Out-of-bounds catchment of the border cells, meters (≥ 0).
        margin_m: f64,
    },
    /// No precomputation: every query walks the frozen/dynamic tree.
    Disabled,
}

impl Default for OracleMode {
    fn default() -> Self {
        Self::Precomputed {
            margin_m: DEFAULT_ORACLE_MARGIN_M,
        }
    }
}

/// The precomputed per-cell candidate arena. Build once next to the
/// [`FrozenRStarTree`] it answers for, share freely across threads
/// (`&self` reads only).
///
/// ```
/// use semitri_geo::{Point, Rect};
/// use semitri_index::{CellOracle, RStarTree};
///
/// let mut tree = RStarTree::new();
/// tree.insert(Rect::new(10.0, 10.0, 20.0, 20.0), 7u32);
/// let frozen = tree.freeze();
/// let oracle = CellOracle::build(&frozen, 50.0, 50.0, 100.0);
/// let (rects, items) = oracle.candidates(Point::new(15.0, 15.0)).unwrap();
/// assert_eq!(items, &[7]);
/// assert_eq!(rects[0], Rect::new(10.0, 10.0, 20.0, 20.0));
/// // far outside bounds + margin: the caller falls back to the tree
/// assert!(oracle.candidates(Point::new(5_000.0, 5_000.0)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CellOracle<T> {
    /// Grid bounds = the frozen tree's bounding box at build time.
    bounds: Rect,
    /// Side length of the square grid cells.
    cell_size: f64,
    /// Query radius the catchment windows were inflated by.
    query_radius: f64,
    /// Out-of-bounds acceptance margin of the border cells.
    margin: f64,
    nx: usize,
    ny: usize,
    /// CSR offsets into the slabs, `nx * ny + 1` entries (row-major
    /// cells); `offsets[c]..offsets[c + 1]` is cell `c`'s slice.
    offsets: Vec<u32>,
    /// Entry rectangles, one contiguous slab (cell after cell), in the
    /// frozen tree's depth-first visit order per cell.
    rects: Vec<Rect>,
    /// Entry items, parallel to `rects`.
    items: Vec<T>,
}

impl<T: Copy> CellOracle<T> {
    /// Materializes the oracle: one frozen range query per grid cell,
    /// appended into the CSR slabs.
    ///
    /// `cell_size` is the grid pitch, `query_radius` the per-point window
    /// radius the readers will filter with (each catchment window is the
    /// cell inflated by `query_radius · (1 + 1e-9)`, the same boundary
    /// pad the matcher's cell cache uses), and `margin` the out-of-bounds
    /// reach of the border cells.
    ///
    /// An empty tree yields an oracle that answers [`None`] everywhere.
    ///
    /// # Panics
    /// Panics when `cell_size`/`query_radius` are not positive finite,
    /// `margin` is negative or non-finite, or the arena would exceed
    /// `u32::MAX` entries.
    pub fn build(
        tree: &FrozenRStarTree<T>,
        cell_size: f64,
        query_radius: f64,
        margin: f64,
    ) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "oracle cell size must be positive"
        );
        assert!(
            query_radius > 0.0 && query_radius.is_finite(),
            "oracle query radius must be positive"
        );
        assert!(
            margin >= 0.0 && margin.is_finite(),
            "oracle margin must be non-negative"
        );
        let bounds = tree.bbox();
        if tree.is_empty() || bounds.is_empty() {
            return Self {
                bounds: Rect::EMPTY,
                cell_size,
                query_radius,
                margin,
                nx: 0,
                ny: 0,
                offsets: vec![0],
                rects: Vec::new(),
                items: Vec::new(),
            };
        }
        let nx = (bounds.width() / cell_size).ceil().max(1.0) as usize;
        let ny = (bounds.height() / cell_size).ceil().max(1.0) as usize;
        // the tiny extra inflation absorbs floating-point rounding in the
        // clamped cell assignment, keeping catchment ⊇ window(p) exact for
        // every p the cell can be asked about
        let pad = query_radius * (1.0 + 1e-9);
        let mut offsets = Vec::with_capacity(nx * ny + 1);
        offsets.push(0u32);
        let mut rects = Vec::new();
        let mut items = Vec::new();
        let mut stack = FrozenRangeScratch::new();
        for row in 0..ny {
            for col in 0..nx {
                // nominal cell rectangle, border cells extended outward by
                // the margin so clamped out-of-bounds points stay covered
                let mut cat = Self::nominal_rect(bounds, cell_size, nx, ny, col, row);
                if col == 0 {
                    cat.min_x -= margin;
                }
                if col + 1 == nx {
                    cat.max_x += margin;
                }
                if row == 0 {
                    cat.min_y -= margin;
                }
                if row + 1 == ny {
                    cat.max_y += margin;
                }
                let window = cat.inflate(pad);
                tree.for_each_in_with(&mut stack, &window, |r, t| {
                    rects.push(*r);
                    items.push(*t);
                });
                assert!(
                    items.len() <= u32::MAX as usize,
                    "oracle arena exceeds u32 offsets"
                );
                offsets.push(items.len() as u32);
            }
        }
        Self {
            bounds,
            cell_size,
            query_radius,
            margin,
            nx,
            ny,
            offsets,
            rects,
            items,
        }
    }

    /// The nominal (unextended, unpadded) rectangle of cell `(col, row)`.
    /// Computed from the cell indices by multiplication — not by
    /// accumulation — so every caller sees the same bit pattern.
    fn nominal_rect(
        bounds: Rect,
        cell_size: f64,
        nx: usize,
        ny: usize,
        col: usize,
        row: usize,
    ) -> Rect {
        debug_assert!(col < nx && row < ny);
        Rect::new(
            bounds.min_x + col as f64 * cell_size,
            bounds.min_y + row as f64 * cell_size,
            bounds.min_x + (col + 1) as f64 * cell_size,
            bounds.min_y + (row + 1) as f64 * cell_size,
        )
    }

    /// The row-major index of the cell serving `p`, or [`None`] when the
    /// oracle cannot answer: the point lies beyond `bounds + margin`, is
    /// non-finite, or the oracle is empty. Out-of-bounds points within
    /// the margin clamp into the border cells (whose catchments were
    /// built to cover them); a point exactly on `bounds.max_x/max_y`
    /// floors to index `nx`/`ny` and relies on the same clamp.
    #[inline]
    pub fn locate(&self, p: Point) -> Option<usize> {
        if self.nx == 0 {
            return None;
        }
        // written so NaN fails: the tree path is the only one that can
        // reproduce the tree's NaN-window semantics
        let in_reach = p.x >= self.bounds.min_x - self.margin
            && p.x <= self.bounds.max_x + self.margin
            && p.y >= self.bounds.min_y - self.margin
            && p.y <= self.bounds.max_y + self.margin;
        if !in_reach {
            return None;
        }
        let cx = ((p.x - self.bounds.min_x) / self.cell_size).floor();
        let cy = ((p.y - self.bounds.min_y) / self.cell_size).floor();
        let col = (cx.max(0.0) as usize).min(self.nx - 1);
        let row = (cy.max(0.0) as usize).min(self.ny - 1);
        Some(row * self.nx + col)
    }

    /// The nominal rectangle of cell `cell` (for hint caches: any point
    /// inside it is provably served by this cell's slab).
    #[inline]
    pub fn cell_rect(&self, cell: usize) -> Rect {
        Self::nominal_rect(
            self.bounds,
            self.cell_size,
            self.nx,
            self.ny,
            cell % self.nx,
            cell / self.nx,
        )
    }

    /// The CSR slab range of cell `cell`.
    #[inline]
    pub fn range(&self, cell: usize) -> (u32, u32) {
        (self.offsets[cell], self.offsets[cell + 1])
    }

    /// The slab slices for a range previously returned by
    /// [`CellOracle::range`].
    #[inline]
    pub fn slab(&self, start: u32, end: u32) -> (&[Rect], &[T]) {
        let (s, e) = (start as usize, end as usize);
        (&self.rects[s..e], &self.items[s..e])
    }

    /// The candidate list serving `p`: every item of the frozen tree
    /// whose box intersects `p ± query_radius` is in the returned slices
    /// (a superset, in tree visit order — filter with the per-point
    /// window to reproduce a direct query exactly). [`None`] means the
    /// point is beyond the precompute margin: fall back to the tree.
    #[inline]
    pub fn candidates(&self, p: Point) -> Option<(&[Rect], &[T])> {
        let cell = self.locate(p)?;
        let (s, e) = self.range(cell);
        Some(self.slab(s, e))
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Total slab entries across all cells (each tree item appears once
    /// per catchment window covering it).
    pub fn slot_count(&self) -> usize {
        self.items.len()
    }

    /// Query radius the oracle was built for.
    pub fn query_radius(&self) -> f64 {
        self.query_radius
    }

    /// Out-of-bounds acceptance margin.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Heap bytes of the arena (CSR offsets + both slabs) — the memory
    /// half of the memory/throughput trade, reported by the hotpath
    /// bench.
    pub fn arena_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.rects.len() * std::mem::size_of::<Rect>()
            + self.items.len() * std::mem::size_of::<T>()
    }

    /// Arena bytes per grid cell (0 for an empty oracle).
    pub fn bytes_per_cell(&self) -> f64 {
        if self.cell_count() == 0 {
            return 0.0;
        }
        self.arena_bytes() as f64 / self.cell_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rstar::RStarTree;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        }
    }

    fn random_frozen(seed: u64, n: usize) -> FrozenRStarTree<usize> {
        let mut next = lcg(seed);
        let mut tree = RStarTree::new();
        for id in 0..n {
            let x = next() * 900.0;
            let y = next() * 600.0;
            tree.insert(Rect::new(x, y, x + next() * 25.0, y + next() * 25.0), id);
        }
        tree.freeze()
    }

    /// The per-point filtered view of the oracle's cell list: the exact
    /// sequence a reader on the hot path produces.
    fn filtered(oracle: &CellOracle<usize>, p: Point, r: f64) -> Option<Vec<usize>> {
        let (rects, items) = oracle.candidates(p)?;
        let window = Rect::from_point(p).inflate(r);
        Some(
            rects
                .iter()
                .zip(items)
                .filter(|(rect, _)| rect.intersects(&window))
                .map(|(_, &id)| id)
                .collect(),
        )
    }

    /// A direct per-point frozen-tree query — the reference the oracle
    /// must reproduce bitwise (same hits, same visit order).
    fn tree_query(tree: &FrozenRStarTree<usize>, p: Point, r: f64) -> Vec<usize> {
        let window = Rect::from_point(p).inflate(r);
        let mut out = Vec::new();
        tree.for_each_in(&window, |_, &id| out.push(id));
        out
    }

    #[test]
    fn freeze_order_identity_on_random_probes() {
        let tree = random_frozen(0xF00D, 700);
        for &radius in &[20.0, 60.0, 130.0] {
            let oracle = CellOracle::build(&tree, radius, radius, 200.0);
            let mut next = lcg(0xCAFE);
            let mut nonempty = 0usize;
            for _ in 0..300 {
                let p = Point::new(next() * 1_000.0 - 50.0, next() * 700.0 - 50.0);
                let got = filtered(&oracle, p, radius).expect("within margin");
                let want = tree_query(&tree, p, radius);
                assert_eq!(got, want, "probe {p:?} radius {radius}");
                nonempty += usize::from(!want.is_empty());
            }
            assert!(nonempty > 50, "probes must hit the tree");
        }
    }

    #[test]
    fn cell_size_decoupled_from_query_radius_stays_identical() {
        let tree = random_frozen(0xA11CE, 400);
        let oracle = CellOracle::build(&tree, 37.0, 80.0, 50.0);
        let mut next = lcg(7);
        for _ in 0..200 {
            let p = Point::new(next() * 950.0, next() * 650.0);
            assert_eq!(
                filtered(&oracle, p, 80.0).unwrap(),
                tree_query(&tree, p, 80.0)
            );
        }
    }

    #[test]
    fn border_clamping_covers_out_of_bounds_fixes() {
        // Regression (grid border clamping): fixes beyond bounds.max_x /
        // max_y clamp into the last row/column, whose catchments must have
        // been inflated by the margin — otherwise the oracle silently
        // drops candidates the tree finds near the border.
        let tree = random_frozen(0xB0DE, 500);
        let b = tree.bbox();
        let (r, margin) = (60.0, 150.0);
        let oracle = CellOracle::build(&tree, r, r, margin);
        let probes = [
            // exactly on the max corner: floor((max - min) / cell) lands
            // at index nx and relies on the clamp
            Point::new(b.max_x, b.max_y),
            Point::new(b.max_x, b.min_y),
            Point::new(b.min_x, b.max_y),
            // beyond every side, within the margin
            Point::new(b.max_x + margin * 0.99, b.max_y * 0.5),
            Point::new(b.min_x - margin * 0.99, b.max_y * 0.5),
            Point::new(b.max_x * 0.5, b.max_y + margin * 0.99),
            Point::new(b.max_x * 0.5, b.min_y - margin * 0.99),
            // the far corner of the margin halo
            Point::new(b.max_x + margin, b.max_y + margin),
        ];
        let mut hits = 0usize;
        for p in probes {
            let got = filtered(&oracle, p, r).expect("within margin");
            let want = tree_query(&tree, p, r);
            assert_eq!(got, want, "probe {p:?}");
            hits += usize::from(!want.is_empty());
        }
        assert!(hits > 0, "border probes must reach real candidates");
        // beyond the margin the oracle refuses and the caller falls back
        assert!(oracle
            .candidates(Point::new(b.max_x + margin * 1.01, b.max_y))
            .is_none());
        assert!(oracle.candidates(Point::new(f64::NAN, 100.0)).is_none());
    }

    #[test]
    fn hint_rect_serves_the_same_slab() {
        let tree = random_frozen(0x51DE, 300);
        let oracle = CellOracle::build(&tree, 45.0, 45.0, 0.0);
        let mut next = lcg(99);
        for _ in 0..200 {
            let p = Point::new(next() * 900.0, next() * 600.0);
            let Some(cell) = oracle.locate(p) else {
                continue;
            };
            let rect = oracle.cell_rect(cell);
            // the hint contract: a point strictly inside the nominal rect
            // locates to a cell whose slab filters identically
            if p.x >= rect.min_x && p.x < rect.max_x && p.y >= rect.min_y && p.y < rect.max_y {
                let (s, e) = oracle.range(cell);
                let (rects, items) = oracle.slab(s, e);
                let (r2, i2) = oracle.candidates(p).unwrap();
                assert_eq!(rects.len(), r2.len());
                assert_eq!(items, i2);
            }
        }
    }

    #[test]
    fn empty_tree_answers_none_everywhere() {
        let tree: FrozenRStarTree<usize> = RStarTree::new().freeze();
        let oracle = CellOracle::build(&tree, 10.0, 10.0, 100.0);
        assert!(oracle.candidates(Point::ORIGIN).is_none());
        assert_eq!(oracle.cell_count(), 0);
        assert_eq!(oracle.slot_count(), 0);
        assert_eq!(oracle.bytes_per_cell(), 0.0);
        assert_eq!(oracle.arena_bytes(), std::mem::size_of::<u32>());
    }

    #[test]
    fn memory_report_is_consistent() {
        let tree = random_frozen(3, 250);
        let oracle = CellOracle::build(&tree, 60.0, 60.0, 100.0);
        assert!(oracle.cell_count() > 0);
        assert!(oracle.slot_count() >= tree.len());
        let expected = oracle.offsets.len() * 4
            + oracle.slot_count() * (std::mem::size_of::<Rect>() + std::mem::size_of::<usize>());
        assert_eq!(oracle.arena_bytes(), expected);
        assert!(oracle.bytes_per_cell() > 0.0);
    }

    #[test]
    fn default_mode_is_precomputed_with_the_documented_margin() {
        match OracleMode::default() {
            OracleMode::Precomputed { margin_m } => {
                assert_eq!(margin_m, DEFAULT_ORACLE_MARGIN_M)
            }
            OracleMode::Disabled => panic!("default must precompute"),
        }
    }
}
