//! A flat uniform grid over point items.
//!
//! The point-annotation layer (§4.3) discretizes the POI area into grid
//! cells and, for each cell, considers "only neighboring POIs in that box"
//! when precomputing the observation model `Pr(grid_jk | C_i)`. This grid
//! provides exactly that: O(1) cell lookup and radius queries that touch
//! only the covered cells.

use semitri_geo::{Point, Rect};

/// A uniform grid index over items with a point position.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    bounds: Rect,
    cell_size: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<(Point, T)>>,
    len: usize,
}

impl<T> GridIndex<T> {
    /// Creates an empty grid covering `bounds` with square cells of side
    /// `cell_size` meters.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or `cell_size` is not positive.
    pub fn new(bounds: Rect, cell_size: f64) -> Self {
        assert!(!bounds.is_empty(), "grid bounds must be non-empty");
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive"
        );
        let nx = (bounds.width() / cell_size).ceil().max(1.0) as usize;
        let ny = (bounds.height() / cell_size).ceil().max(1.0) as usize;
        let cells = (0..nx * ny).map(|_| Vec::new()).collect();
        Self {
            bounds,
            cell_size,
            nx,
            ny,
            cells,
            len: 0,
        }
    }

    /// Grid columns.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid rows.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Cell side length in meters.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no items are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `(col, row)` cell coordinates of `p`, clamped to the grid.
    ///
    /// The contract mirrors `CellOracle::locate`'s clamp step so the two
    /// discretizations agree at the edges:
    ///
    /// * **interior** points map to the cell containing them, with cell
    ///   `c` owning the half-open span `[c·size, (c+1)·size)`;
    /// * points **on the max bound** (and any finite point beyond any
    ///   bound) clamp to the nearest border cell, so every finite query
    ///   maps somewhere deterministic;
    /// * **non-finite** coordinates are a caller bug and panic — without
    ///   the check, `f64::max(NaN, 0.0)` silently collapses NaN to cell
    ///   `(0, 0)`, indexing garbage instead of surfacing the bad input.
    ///   Callers holding untrusted points should use
    ///   [`GridIndex::try_cell_of`].
    ///
    /// # Panics
    /// Panics when either coordinate of `p` is NaN or infinite.
    #[inline]
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        self.try_cell_of(p)
            .expect("cannot map a non-finite point to a grid cell")
    }

    /// [`GridIndex::cell_of`] for untrusted input: `None` when either
    /// coordinate is NaN or infinite, instead of panicking. This is the
    /// same rejection `CellOracle::locate` applies (its in-reach test is
    /// written so NaN fails it), expressed as an `Option`.
    #[inline]
    pub fn try_cell_of(&self, p: Point) -> Option<(usize, usize)> {
        if !p.is_finite() {
            return None;
        }
        let cx = ((p.x - self.bounds.min_x) / self.cell_size).floor();
        let cy = ((p.y - self.bounds.min_y) / self.cell_size).floor();
        let cx = (cx.max(0.0) as usize).min(self.nx - 1);
        let cy = (cy.max(0.0) as usize).min(self.ny - 1);
        Some((cx, cy))
    }

    /// Flat index of a cell; used as the discretization key of the HMM
    /// observation model.
    #[inline]
    pub fn cell_index(&self, col: usize, row: usize) -> usize {
        debug_assert!(col < self.nx && row < self.ny);
        row * self.nx + col
    }

    /// Center point of a cell.
    pub fn cell_center(&self, col: usize, row: usize) -> Point {
        Point::new(
            self.bounds.min_x + (col as f64 + 0.5) * self.cell_size,
            self.bounds.min_y + (row as f64 + 0.5) * self.cell_size,
        )
    }

    /// Inserts an item at `p`.
    pub fn insert(&mut self, p: Point, item: T) {
        assert!(p.is_finite(), "cannot index a non-finite point");
        let (cx, cy) = self.cell_of(p);
        let idx = self.cell_index(cx, cy);
        self.cells[idx].push((p, item));
        self.len += 1;
    }

    /// Items stored in the cell containing `p`.
    pub fn in_cell(&self, p: Point) -> &[(Point, T)] {
        let (cx, cy) = self.cell_of(p);
        &self.cells[self.cell_index(cx, cy)]
    }

    /// Visits every item within `radius` meters of `p` (exact point
    /// distance; only the covered cells are scanned).
    pub fn for_each_within<'a>(&'a self, p: Point, radius: f64, mut f: impl FnMut(Point, &'a T)) {
        assert!(
            radius >= 0.0 && radius.is_finite(),
            "radius must be non-negative and finite"
        );
        let (c0x, c0y) = self.cell_of(Point::new(p.x - radius, p.y - radius));
        let (c1x, c1y) = self.cell_of(Point::new(p.x + radius, p.y + radius));
        let r_sq = radius * radius;
        for row in c0y..=c1y {
            for col in c0x..=c1x {
                for (q, item) in &self.cells[self.cell_index(col, row)] {
                    if q.distance_sq(p) <= r_sq {
                        f(*q, item);
                    }
                }
            }
        }
    }

    /// Collects every item within `radius` meters of `p`.
    pub fn within(&self, p: Point, radius: f64) -> Vec<(Point, &T)> {
        let mut out = Vec::new();
        self.for_each_within(p, radius, |q, t| out.push((q, t)));
        out
    }

    /// Iterates over all `(cell_index, items)` pairs with at least one item.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (usize, &[(Point, T)])> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, v)| (i, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridIndex<u32> {
        GridIndex::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0)
    }

    #[test]
    fn dimensions() {
        let g = grid();
        assert_eq!(g.nx(), 10);
        assert_eq!(g.ny(), 10);
        assert!(g.is_empty());
    }

    #[test]
    fn non_divisible_bounds_round_up() {
        let g: GridIndex<()> = GridIndex::new(Rect::new(0.0, 0.0, 95.0, 41.0), 10.0);
        assert_eq!(g.nx(), 10);
        assert_eq!(g.ny(), 5);
    }

    #[test]
    fn cell_of_maps_interior_and_clamps_exterior() {
        let g = grid();
        assert_eq!(g.cell_of(Point::new(5.0, 5.0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(95.0, 15.0)), (9, 1));
        // boundary: max corner clamps into the last cell
        assert_eq!(g.cell_of(Point::new(100.0, 100.0)), (9, 9));
        // outside: clamped
        assert_eq!(g.cell_of(Point::new(-50.0, 500.0)), (0, 9));
    }

    #[test]
    fn cell_of_boundary_contract_is_half_open_then_clamped() {
        let g = grid();
        // interior cell boundaries are half-open: an exact multiple of the
        // cell size belongs to the upper cell …
        assert_eq!(g.cell_of(Point::new(10.0, 0.0)), (1, 0));
        assert_eq!(g.cell_of(Point::new(90.0, 90.0)), (9, 9));
        // … except on the max bound, where there is no upper cell and the
        // point clamps into the last one (CellOracle::locate's clamp)
        assert_eq!(g.cell_of(Point::new(100.0, 50.0)), (9, 5));
        assert_eq!(g.cell_of(Point::new(50.0, 100.0)), (5, 9));
        // the min bound belongs to cell 0 outright
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), (0, 0));
        // just inside the max bound is still the last cell
        let eps = 100.0 - f64::EPSILON * 100.0;
        assert_eq!(g.cell_of(Point::new(eps, eps)), (9, 9));
    }

    #[test]
    fn try_cell_of_rejects_non_finite_and_matches_cell_of_elsewhere() {
        let g = grid();
        assert_eq!(g.try_cell_of(Point::new(f64::NAN, 5.0)), None);
        assert_eq!(g.try_cell_of(Point::new(5.0, f64::NAN)), None);
        assert_eq!(g.try_cell_of(Point::new(f64::INFINITY, 5.0)), None);
        assert_eq!(g.try_cell_of(Point::new(5.0, f64::NEG_INFINITY)), None);
        for p in [
            Point::new(0.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(-3.0, 55.5),
            Point::new(1e12, -1e12),
        ] {
            assert_eq!(g.try_cell_of(p), Some(g.cell_of(p)));
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn cell_of_panics_on_nan_instead_of_aliasing_cell_zero() {
        grid().cell_of(Point::new(f64::NAN, f64::NAN));
    }

    #[test]
    fn max_bound_insert_and_query_roundtrip() {
        let mut g = grid();
        // an item exactly on the max corner is stored in the last cell and
        // found again by cell and by radius probes from inside and outside
        g.insert(Point::new(100.0, 100.0), 7);
        assert_eq!(g.in_cell(Point::new(100.0, 100.0)).len(), 1);
        assert_eq!(g.within(Point::new(99.0, 99.0), 2.0).len(), 1);
        assert_eq!(g.within(Point::new(101.0, 101.0), 2.0).len(), 1);
    }

    #[test]
    fn insert_and_in_cell() {
        let mut g = grid();
        g.insert(Point::new(12.0, 13.0), 1);
        g.insert(Point::new(17.0, 18.0), 2);
        g.insert(Point::new(55.0, 55.0), 3);
        assert_eq!(g.len(), 3);
        let cell = g.in_cell(Point::new(15.0, 15.0));
        let mut ids: Vec<u32> = cell.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn within_exact_radius() {
        let mut g = grid();
        for i in 0..10 {
            g.insert(Point::new(i as f64 * 10.0 + 5.0, 5.0), i);
        }
        let hits = g.within(Point::new(35.0, 5.0), 12.0);
        let mut ids: Vec<u32> = hits.iter().map(|&(_, &id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3, 4]); // x = 25, 35, 45
    }

    #[test]
    fn within_radius_zero_finds_exact_point() {
        let mut g = grid();
        g.insert(Point::new(50.0, 50.0), 9);
        let hits = g.within(Point::new(50.0, 50.0), 0.0);
        assert_eq!(hits.len(), 1);
        assert!(g.within(Point::new(50.1, 50.0), 0.0).is_empty());
    }

    #[test]
    fn within_spanning_outside_bounds() {
        let mut g = grid();
        g.insert(Point::new(2.0, 2.0), 1);
        // probe outside the grid still finds the border item
        let hits = g.within(Point::new(-5.0, 2.0), 8.0);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn occupied_cells_skips_empty() {
        let mut g = grid();
        g.insert(Point::new(5.0, 5.0), 1);
        g.insert(Point::new(6.0, 6.0), 2);
        g.insert(Point::new(95.0, 95.0), 3);
        let occ: Vec<_> = g.occupied_cells().collect();
        assert_eq!(occ.len(), 2);
        let total: usize = occ.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn cell_center_roundtrip() {
        let g = grid();
        let c = g.cell_center(3, 7);
        assert_eq!(g.cell_of(c), (3, 7));
        assert_eq!(c, Point::new(35.0, 75.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_cell_size() {
        let _: GridIndex<()> = GridIndex::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_bounds() {
        let _: GridIndex<()> = GridIndex::new(Rect::EMPTY, 1.0);
    }
}
