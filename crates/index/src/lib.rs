//! # semitri-index — spatial indexes for SeMiTri
//!
//! The paper leans on two access methods:
//!
//! * an **R\*-tree** (Beckmann et al., SIGMOD 1990 — the paper's reference
//!   \[2\]) indexing semantic regions for the spatial-join region annotation
//!   (Algorithm 1) and road segments for candidate selection in global map
//!   matching (Algorithm 2);
//! * a **uniform grid** used by the point-annotation layer to discretize the
//!   POI observation model (`Pr(grid_jk | C_i)`, §4.3) and to fetch the
//!   neighboring POIs of a stop.
//!
//! Both are implemented here from scratch:
//!
//! * [`RStarTree`] — insertion with ChooseSubtree, R\* split
//!   (axis/index choice by margin and overlap), forced reinsertion at the
//!   leaf level, range queries, and best-first k-nearest-neighbor search
//!   with exact user-supplied distances; plus Sort-Tile-Recursive bulk
//!   loading for the million-cell landuse grids.
//! * [`GridIndex`] — a flat uniform grid over point items with
//!   radius/cell queries.
//! * [`FrozenRStarTree`] — an immutable cache-packed snapshot of the
//!   R\*-tree (flat BFS node arena, CSR child ranges, SoA bounding-box
//!   arrays, contiguous leaf-entry slab) whose range and kNN results are
//!   bit-identical — values *and* visit order — to the dynamic tree's.
//!   The annotation pipeline builds each index once per city and reads it
//!   millions of times, so [`IndexMode::Frozen`] is the default backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frozen;
pub mod generation;
pub mod grid;
pub mod oracle;
pub mod rstar;

pub use frozen::{FrozenNearestScratch, FrozenRStarTree, FrozenRangeScratch, IndexMode};
pub use generation::{Generation, GenerationHandle, GenerationId, SnapshotSet};
pub use grid::GridIndex;
pub use oracle::{CellOracle, OracleMode, DEFAULT_ORACLE_MARGIN_M};
pub use rstar::{NearestScratch, RStarParams, RStarTree, RangeScratch};
