//! An immutable, cache-packed snapshot of an [`RStarTree`].
//!
//! The annotation pipeline builds its spatial indexes once per city and
//! then reads them millions of times (one region probe and one candidate
//! window per GPS fix, one POI lookup per stop). The dynamic tree pays a
//! pointer chase through `Box<Node>` heap allocations on every level of
//! every query; [`FrozenRStarTree`] removes that cost with the classic
//! read-optimized flat layout:
//!
//! * **node arena** — all nodes live in one `Vec`, in BFS order (root at
//!   index 0), so a parent's children are contiguous and visited by index
//!   arithmetic instead of pointer dereferences;
//! * **CSR child ranges** — each node stores a `start..end` range into
//!   the arena (internal nodes) or into the entry slab (leaves);
//! * **SoA bounding boxes** — node boxes are split into `min_x[] /
//!   min_y[] / max_x[] / max_y[]` arrays, so the pruning test reads four
//!   flat `f64` lanes with no struct padding between siblings;
//! * **entry slab** — leaf entries (`Rect` + item) are packed into
//!   parallel contiguous vectors, one leaf after another, with an SoA
//!   mirror of the entry boxes so the leaf scan is compare-only and the
//!   `Rect`/item slabs are touched only on hits.
//!
//! **Order identity.** Every query reproduces the dynamic tree's result
//! *order* bit for bit, not just its result set: ranges visit children
//! depth-first in stored order (the freeze preserves the dynamic child
//! order, and the iterative stack pushes in reverse exactly like
//! [`RStarTree::for_each_in_with`]), and nearest-neighbor search drives
//! an identical best-first heap — same push sequence, same
//! distance-only comparator, so equal-distance ties break the same way.
//! The property suite in `tests/properties.rs` asserts both identities
//! against the dynamic tree, which is what lets every annotation layer
//! switch backends without changing a single output byte.

use crate::rstar::{Node, RStarTree};
use semitri_geo::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Lane width of the chunked bbox-intersection passes: 8 × f64 box lanes
/// per iteration, matching `semitri_geo::LANES`.
const LANES: usize = 8;

/// 8-wide bbox-intersection test over one chunk of SoA box lanes. Bit `i`
/// of the returned mask is set when box `i` intersects the (non-empty)
/// query window — the same four comparisons the scalar loop performs,
/// evaluated with `&` instead of `&&` so each lane pass is straight-line
/// compare/or code the autovectorizer can lower to packed compares and a
/// movemask.
///
/// The test runs as an x-axis prefilter followed by a y-axis confirm: for
/// point-window queries over a planar tree almost every chunk is entirely
/// x-disjoint, so the common case pays only the two x compares per lane
/// (the scalar loop's `&&` chain exits just as early, one box at a time —
/// this is the lane-wise equivalent) and the y half is skipped behind one
/// well-predicted `mx == 0` branch.
///
/// Hit positions are resolved *after* the mask (`trailing_zeros` walks set
/// bits in ascending lane order), so consumers visit hits in exactly the
/// scalar forward-scan order — the mask changes how many boxes are in
/// flight, never the visit sequence.
#[inline(always)]
fn intersect_mask8(
    lx: &[f64; LANES],
    ly: &[f64; LANES],
    hx: &[f64; LANES],
    hy: &[f64; LANES],
    query: &Rect,
) -> u8 {
    let mut mx = 0u8;
    for i in 0..LANES {
        let hit = (query.min_x <= hx[i]) & (lx[i] <= query.max_x);
        mx |= (hit as u8) << i;
    }
    if mx == 0 {
        return 0;
    }
    let mut my = 0u8;
    for i in 0..LANES {
        let hit = (query.min_y <= hy[i]) & (ly[i] <= query.max_y);
        my |= (hit as u8) << i;
    }
    mx & my
}

/// Which R\*-tree backend a read path uses.
///
/// The pipeline's indexes are write-once/read-millions, so the frozen
/// snapshot is the default everywhere; the dynamic backend is retained
/// for incremental workloads and as the identity oracle in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Freeze each index into its flat snapshot after building (default).
    #[default]
    Frozen,
    /// Query the pointer-based dynamic tree directly.
    Dynamic,
}

/// A reusable traversal stack for [`FrozenRStarTree::for_each_in_with`].
///
/// Unlike [`RangeScratch`](crate::RangeScratch) this holds plain `u32`
/// arena indexes, not borrows — so it carries no lifetime and can live
/// inside long-lived scratch arenas (e.g. the matcher's `MatchScratch`)
/// across queries and across trees.
#[derive(Debug, Default)]
pub struct FrozenRangeScratch {
    stack: Vec<u32>,
}

impl FrozenRangeScratch {
    /// Creates an empty scratch stack (no allocation until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Stack slots currently reserved (diagnostics/tests).
    pub fn capacity(&self) -> usize {
        self.stack.capacity()
    }
}

/// Best-first candidate of the frozen nearest-neighbor search: an arena
/// node or an entry-slab item, both by index.
#[derive(Debug, Clone, Copy)]
enum FrozenCand {
    Node(u32),
    Item(u32),
}

/// Heap entry mirroring the dynamic tree's: ordering compares the
/// distance only (reversed for min-first), ties are `Equal`. Identical
/// push sequences through an identical comparator make the pop order —
/// and therefore the query result order — bit-identical to the dynamic
/// tree's.
#[derive(Debug, Clone, Copy)]
struct FrozenHeapEntry {
    dist: f64,
    cand: FrozenCand,
}

impl PartialEq for FrozenHeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for FrozenHeapEntry {}
impl PartialOrd for FrozenHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrozenHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we need min-first
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

/// Reusable heap storage for [`FrozenRStarTree::nearest_by_with`].
/// Lifetime-free (indexes, not borrows), so it can be embedded in
/// long-lived per-worker scratch state.
#[derive(Debug, Default)]
pub struct FrozenNearestScratch {
    heap_buf: Vec<FrozenHeapEntry>,
}

impl FrozenNearestScratch {
    /// Creates an empty scratch (no allocation until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap slots currently reserved (diagnostics/tests).
    pub fn capacity(&self) -> usize {
        self.heap_buf.capacity()
    }
}

/// The immutable flat snapshot of an [`RStarTree`]. Build once with
/// [`RStarTree::freeze`] (or [`FrozenRStarTree::from_dynamic`]), share
/// freely across threads (`&self` queries only), and get the dynamic
/// tree's exact results — values *and* visit order — at flat-array cost.
///
/// ```
/// use semitri_geo::{Point, Rect};
/// use semitri_index::{FrozenRStarTree, RStarTree};
///
/// let mut tree = RStarTree::new();
/// tree.insert(Rect::new(0.0, 0.0, 1.0, 1.0), "cell a");
/// tree.insert(Rect::new(5.0, 5.0, 6.0, 6.0), "cell b");
/// let frozen = tree.freeze();
/// let mut hits = Vec::new();
/// frozen.for_each_in(&Rect::new(0.5, 0.5, 2.0, 2.0), |_, &name| hits.push(name));
/// assert_eq!(hits, vec!["cell a"]);
/// ```
#[derive(Debug, Clone)]
pub struct FrozenRStarTree<T> {
    /// `true` when the arena node is a leaf.
    leaf: Vec<bool>,
    /// CSR range start: first child arena index (internal) or first entry
    /// slab index (leaf).
    start: Vec<u32>,
    /// CSR range end (exclusive), same space as `start`.
    end: Vec<u32>,
    /// Node bounding boxes, SoA.
    nmin_x: Vec<f64>,
    nmin_y: Vec<f64>,
    nmax_x: Vec<f64>,
    nmax_y: Vec<f64>,
    /// Entry rectangles, one contiguous slab (leaf after leaf).
    entry_rects: Vec<Rect>,
    /// Entry bounding boxes, SoA mirror of `entry_rects` — the leaf scan
    /// reads these four flat lanes and touches the `Rect` slab only on a
    /// hit.
    emin_x: Vec<f64>,
    emin_y: Vec<f64>,
    emax_x: Vec<f64>,
    emax_y: Vec<f64>,
    /// Entry items, parallel to `entry_rects`.
    items: Vec<T>,
    len: usize,
    height: usize,
    bbox: Rect,
}

impl<T> FrozenRStarTree<T> {
    /// Flattens a dynamic tree into the frozen layout in one BFS pass.
    ///
    /// Nodes are numbered in BFS order, so every node's children occupy a
    /// contiguous arena range in the same relative order the dynamic tree
    /// stored them — the invariant the order-identity contract rests on.
    pub fn from_dynamic(tree: RStarTree<T>) -> Self {
        let n_nodes_hint = tree.len() / 16 + 2;
        let (root, len, height, bbox) = tree.into_parts();
        let mut f = Self {
            leaf: Vec::with_capacity(n_nodes_hint),
            start: Vec::with_capacity(n_nodes_hint),
            end: Vec::with_capacity(n_nodes_hint),
            nmin_x: Vec::with_capacity(n_nodes_hint),
            nmin_y: Vec::with_capacity(n_nodes_hint),
            nmax_x: Vec::with_capacity(n_nodes_hint),
            nmax_y: Vec::with_capacity(n_nodes_hint),
            entry_rects: Vec::with_capacity(len),
            emin_x: Vec::with_capacity(len),
            emin_y: Vec::with_capacity(len),
            emax_x: Vec::with_capacity(len),
            emax_y: Vec::with_capacity(len),
            items: Vec::with_capacity(len),
            len,
            height,
            bbox,
        };
        // BFS: the queue pops nodes in exactly arena-index order, so the
        // running `assigned` counter prices each node's child range before
        // the children themselves are processed
        let mut queue: VecDeque<(Node<T>, Rect)> = VecDeque::new();
        queue.push_back((root, bbox));
        let mut assigned: u32 = 1;
        while let Some((node, rect)) = queue.pop_front() {
            f.nmin_x.push(rect.min_x);
            f.nmin_y.push(rect.min_y);
            f.nmax_x.push(rect.max_x);
            f.nmax_y.push(rect.max_y);
            match node {
                Node::Leaf(es) => {
                    f.leaf.push(true);
                    f.start.push(f.items.len() as u32);
                    for e in es {
                        f.entry_rects.push(e.rect);
                        f.emin_x.push(e.rect.min_x);
                        f.emin_y.push(e.rect.min_y);
                        f.emax_x.push(e.rect.max_x);
                        f.emax_y.push(e.rect.max_y);
                        f.items.push(e.item);
                    }
                    f.end.push(f.items.len() as u32);
                }
                Node::Internal(cs) => {
                    f.leaf.push(false);
                    f.start.push(assigned);
                    assigned += cs.len() as u32;
                    f.end.push(assigned);
                    for c in cs {
                        queue.push_back((*c.node, c.rect));
                    }
                }
            }
        }
        debug_assert_eq!(f.items.len(), f.len);
        f
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the snapshot holds no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the frozen tree (1 = the root is a leaf).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Bounding box of the whole tree ([`Rect::EMPTY`] when empty). O(1).
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Number of arena nodes (diagnostics/tests).
    pub fn node_count(&self) -> usize {
        self.leaf.len()
    }

    /// All items whose rectangle intersects `query`, with their rectangles.
    pub fn query(&self, query: &Rect) -> Vec<(&Rect, &T)> {
        let mut out = Vec::new();
        self.for_each_in(query, |r, t| out.push((r, t)));
        out
    }

    /// Visits every item whose rectangle intersects `query`, in exactly the
    /// dynamic tree's depth-first visit order.
    pub fn for_each_in<'a>(&'a self, query: &Rect, f: impl FnMut(&'a Rect, &'a T)) {
        self.for_each_in_with(&mut FrozenRangeScratch::new(), query, f);
    }

    /// [`FrozenRStarTree::for_each_in`] threading a caller-owned traversal
    /// stack, so repeated queries perform no heap allocation once the stack
    /// has warmed up.
    ///
    /// Dispatches at compile time between the two result-identical scan
    /// bodies: the 8-wide chunked lane pass
    /// ([`FrozenRStarTree::for_each_in_lanes_with`]) when the build target
    /// has ≥256-bit SIMD (`avx`), and the scalar early-exit loops
    /// ([`FrozenRStarTree::for_each_in_scalar_with`]) otherwise. At the
    /// x86-64 SSE2 baseline packed `f64` compares are only 2-wide, so the
    /// mask assembly costs more than the scalar `&&` chain's early exits
    /// (measured ≈0.9x on the hotpath bench); from AVX up the 4-wide
    /// compares amortize it. Both bodies produce bit-identical visit
    /// sequences, so the dispatch is observable only in throughput.
    pub fn for_each_in_with<'a>(
        &'a self,
        scratch: &mut FrozenRangeScratch,
        query: &Rect,
        f: impl FnMut(&'a Rect, &'a T),
    ) {
        if cfg!(target_feature = "avx") {
            self.for_each_in_lanes_with(scratch, query, f);
        } else {
            self.for_each_in_scalar_with(scratch, query, f);
        }
    }

    /// The chunked lane body of [`FrozenRStarTree::for_each_in_with`]:
    /// both the leaf-slab scan and the internal-node child scan run in
    /// 8-wide chunked lane passes ([`intersect_mask8`]) — each chunk emits
    /// a `u8` hit mask from branchless compares over `[f64; 8]` subslices
    /// of the SoA box lanes, hit positions are resolved after the mask in
    /// ascending lane order, and a scalar tail handles the remainder — so
    /// the visit sequence, the `Rect::intersects` re-confirm semantics and
    /// the results stay bit-identical to the scalar reference
    /// ([`FrozenRStarTree::for_each_in_scalar_with`], retained as the
    /// order-identity oracle and the bench baseline).
    ///
    /// Public so the property tests and the hotpath bench can pin this
    /// body regardless of what the build-target dispatch selects.
    pub fn for_each_in_lanes_with<'a>(
        &'a self,
        scratch: &mut FrozenRangeScratch,
        query: &Rect,
        mut f: impl FnMut(&'a Rect, &'a T),
    ) {
        // an empty query intersects nothing (Rect::intersects is false on
        // either side being empty); the raw SoA test below assumes a
        // non-empty query, so short-circuit here to stay result-identical
        if self.leaf.is_empty() || query.is_empty() {
            return;
        }
        scratch.stack.clear();
        scratch.stack.push(0);
        while let Some(n) = scratch.stack.pop() {
            let n = n as usize;
            let (s, e) = (self.start[n] as usize, self.end[n] as usize);
            let chunks = (e - s) / LANES * LANES;
            if self.leaf[n] {
                // compare-only SoA pre-filter; the `Rect` slab is touched
                // only on a hit, where `Rect::intersects` re-confirms so
                // degenerate (empty) entry rects keep their exact dynamic
                // semantics — for valid rects the confirm never rejects
                // `chunks_exact` + zip keeps the chunk loads free of the
                // per-chunk slice bounds checks that indexed subslicing
                // would re-check against the full lane arrays.
                let lanes = self.emin_x[s..s + chunks]
                    .chunks_exact(LANES)
                    .zip(self.emin_y[s..s + chunks].chunks_exact(LANES))
                    .zip(self.emax_x[s..s + chunks].chunks_exact(LANES))
                    .zip(self.emax_y[s..s + chunks].chunks_exact(LANES));
                for (ci, (((lx, ly), hx), hy)) in lanes.enumerate() {
                    let base = s + ci * LANES;
                    let lx: &[f64; LANES] = lx.try_into().unwrap();
                    let ly: &[f64; LANES] = ly.try_into().unwrap();
                    let hx: &[f64; LANES] = hx.try_into().unwrap();
                    let hy: &[f64; LANES] = hy.try_into().unwrap();
                    let mut m = intersect_mask8(lx, ly, hx, hy, query);
                    while m != 0 {
                        let i = base + m.trailing_zeros() as usize;
                        m &= m - 1;
                        let r = &self.entry_rects[i];
                        if r.intersects(query) {
                            f(r, &self.items[i]);
                        }
                    }
                }
                for i in s + chunks..e {
                    if query.min_x <= self.emax_x[i]
                        && self.emin_x[i] <= query.max_x
                        && query.min_y <= self.emax_y[i]
                        && self.emin_y[i] <= query.max_y
                    {
                        let r = &self.entry_rects[i];
                        if r.intersects(query) {
                            f(r, &self.items[i]);
                        }
                    }
                }
            } else {
                // chunked forward scan, then reverse the pushed run so the
                // pop order still matches the dynamic tree's recursive
                // depth-first visit order
                let base_len = scratch.stack.len();
                let lanes = self.nmin_x[s..s + chunks]
                    .chunks_exact(LANES)
                    .zip(self.nmin_y[s..s + chunks].chunks_exact(LANES))
                    .zip(self.nmax_x[s..s + chunks].chunks_exact(LANES))
                    .zip(self.nmax_y[s..s + chunks].chunks_exact(LANES));
                for (ci, (((lx, ly), hx), hy)) in lanes.enumerate() {
                    let base = s + ci * LANES;
                    let lx: &[f64; LANES] = lx.try_into().unwrap();
                    let ly: &[f64; LANES] = ly.try_into().unwrap();
                    let hx: &[f64; LANES] = hx.try_into().unwrap();
                    let hy: &[f64; LANES] = hy.try_into().unwrap();
                    let mut m = intersect_mask8(lx, ly, hx, hy, query);
                    while m != 0 {
                        let i = base + m.trailing_zeros() as usize;
                        m &= m - 1;
                        scratch.stack.push(i as u32);
                    }
                }
                for i in s + chunks..e {
                    if query.min_x <= self.nmax_x[i]
                        && self.nmin_x[i] <= query.max_x
                        && query.min_y <= self.nmax_y[i]
                        && self.nmin_y[i] <= query.max_y
                    {
                        scratch.stack.push(i as u32);
                    }
                }
                scratch.stack[base_len..].reverse();
            }
        }
    }

    /// The scalar reference for [`FrozenRStarTree::for_each_in_with`]:
    /// one-box-at-a-time forward scans, the layout's original loops.
    ///
    /// Retained (like the matcher's `match_records_naive`) as the identity
    /// oracle the chunked-path property tests compare against, and as the
    /// baseline side of the `frozen_range_lanes` hotpath bench pair.
    pub fn for_each_in_scalar_with<'a>(
        &'a self,
        scratch: &mut FrozenRangeScratch,
        query: &Rect,
        mut f: impl FnMut(&'a Rect, &'a T),
    ) {
        if self.leaf.is_empty() || query.is_empty() {
            return;
        }
        scratch.stack.clear();
        scratch.stack.push(0);
        while let Some(n) = scratch.stack.pop() {
            let n = n as usize;
            let (s, e) = (self.start[n] as usize, self.end[n] as usize);
            if self.leaf[n] {
                let boxes = self.emin_x[s..e]
                    .iter()
                    .zip(&self.emin_y[s..e])
                    .zip(&self.emax_x[s..e])
                    .zip(&self.emax_y[s..e]);
                for (i, (((&lx, &ly), &hx), &hy)) in boxes.enumerate() {
                    if query.min_x <= hx
                        && lx <= query.max_x
                        && query.min_y <= hy
                        && ly <= query.max_y
                    {
                        let r = &self.entry_rects[s + i];
                        if r.intersects(query) {
                            f(r, &self.items[s + i]);
                        }
                    }
                }
            } else {
                let base = scratch.stack.len();
                let boxes = self.nmin_x[s..e]
                    .iter()
                    .zip(&self.nmin_y[s..e])
                    .zip(&self.nmax_x[s..e])
                    .zip(&self.nmax_y[s..e]);
                for (i, (((&lx, &ly), &hx), &hy)) in boxes.enumerate() {
                    if query.min_x <= hx
                        && lx <= query.max_x
                        && query.min_y <= hy
                        && ly <= query.max_y
                    {
                        scratch.stack.push((s + i) as u32);
                    }
                }
                scratch.stack[base..].reverse();
            }
        }
    }

    /// Number of items whose rectangle intersects `query`.
    pub fn count_in(&self, query: &Rect) -> usize {
        let mut n = 0;
        self.for_each_in(query, |_, _| n += 1);
        n
    }

    /// The `k` items nearest to `p` under the caller-supplied exact
    /// distance `dist` — same contract and same result order as
    /// [`RStarTree::nearest_by`].
    pub fn nearest_by<'a>(
        &'a self,
        p: Point,
        k: usize,
        dist: impl FnMut(&'a T) -> f64,
    ) -> Vec<(f64, &'a T)> {
        self.nearest_by_with(&mut FrozenNearestScratch::new(), p, k, dist)
    }

    /// [`FrozenRStarTree::nearest_by`] reusing a caller-owned heap buffer,
    /// so repeated queries allocate nothing once the heap has warmed up.
    pub fn nearest_by_with<'a>(
        &'a self,
        scratch: &mut FrozenNearestScratch,
        p: Point,
        k: usize,
        mut dist: impl FnMut(&'a T) -> f64,
    ) -> Vec<(f64, &'a T)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        scratch.heap_buf.clear();
        let mut heap = BinaryHeap::from(std::mem::take(&mut scratch.heap_buf));
        heap.push(FrozenHeapEntry {
            dist: 0.0,
            cand: FrozenCand::Node(0),
        });
        let mut out: Vec<(f64, &T)> = Vec::with_capacity(k);

        while let Some(FrozenHeapEntry { dist: d, cand }) = heap.pop() {
            if out.len() == k {
                break;
            }
            match cand {
                FrozenCand::Item(i) => out.push((d, &self.items[i as usize])),
                FrozenCand::Node(n) => {
                    let n = n as usize;
                    let (s, e) = (self.start[n] as usize, self.end[n] as usize);
                    if self.leaf[n] {
                        for (i, t) in self.items[s..e].iter().enumerate() {
                            let exact = dist(t);
                            debug_assert!(
                                exact + 1e-9 >= self.entry_rects[s + i].distance_to_point(p),
                                "dist() must dominate the bbox lower bound"
                            );
                            heap.push(FrozenHeapEntry {
                                dist: exact,
                                cand: FrozenCand::Item((s + i) as u32),
                            });
                        }
                    } else {
                        // forward zipped-slice scan: same push order as the
                        // dynamic tree's child loop, one bounds check per
                        // range instead of four per child
                        let boxes = self.nmin_x[s..e]
                            .iter()
                            .zip(&self.nmin_y[s..e])
                            .zip(&self.nmax_x[s..e])
                            .zip(&self.nmax_y[s..e]);
                        for (i, (((&lx, &ly), &hx), &hy)) in boxes.enumerate() {
                            let dx = (lx - p.x).max(0.0).max(p.x - hx);
                            let dy = (ly - p.y).max(0.0).max(p.y - hy);
                            heap.push(FrozenHeapEntry {
                                dist: (dx * dx + dy * dy).sqrt(),
                                cand: FrozenCand::Node((s + i) as u32),
                            });
                        }
                    }
                }
            }
        }
        let mut buf = heap.into_vec();
        buf.clear();
        scratch.heap_buf = buf;
        out
    }

    /// Visits every item whose bounding rectangle lies within `radius` of
    /// `p` (coarse, bbox-level filter — the caller refines with exact
    /// geometry), without materializing a `Vec`.
    pub fn for_each_within_radius<'a>(
        &'a self,
        p: Point,
        radius: f64,
        mut f: impl FnMut(&'a Rect, &'a T),
    ) {
        let window = Rect::from_point(p).inflate(radius);
        self.for_each_in(&window, |r, t| {
            if r.distance_to_point(p) <= radius {
                f(r, t);
            }
        });
    }

    /// All items whose bounding rectangle lies within `radius` of `p`
    /// (coarse, bbox-level filter).
    pub fn within_radius(&self, p: Point, radius: f64) -> Vec<(&Rect, &T)> {
        let mut out = Vec::new();
        self.for_each_within_radius(p, radius, |r, t| out.push((r, t)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        }
    }

    fn random_tree(seed: u64, n: usize) -> RStarTree<usize> {
        let mut next = lcg(seed);
        let mut tree = RStarTree::new();
        for id in 0..n {
            let x = next() * 900.0;
            let y = next() * 900.0;
            tree.insert(Rect::new(x, y, x + next() * 15.0, y + next() * 15.0), id);
        }
        tree
    }

    #[test]
    fn empty_and_single_item_snapshots() {
        let frozen: FrozenRStarTree<u8> = RStarTree::new().freeze();
        assert!(frozen.is_empty());
        assert_eq!(frozen.node_count(), 1);
        assert!(frozen.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(frozen.nearest_by(Point::ORIGIN, 3, |_| 0.0).is_empty());

        let mut t = RStarTree::new();
        t.insert(Rect::from_point(Point::new(5.0, 5.0)), 42u32);
        let frozen = t.freeze();
        assert_eq!(frozen.len(), 1);
        assert_eq!(frozen.height(), 1);
        assert_eq!(frozen.query(&Rect::new(0.0, 0.0, 10.0, 10.0)).len(), 1);
        assert!(frozen.query(&Rect::new(6.0, 6.0, 10.0, 10.0)).is_empty());
    }

    #[test]
    fn range_order_matches_dynamic_exactly() {
        let tree = random_tree(0xBEEF, 800);
        let frozen = tree.clone().freeze();
        assert_eq!(frozen.len(), tree.len());
        assert_eq!(frozen.height(), tree.height());
        assert_eq!(frozen.bbox(), tree.bbox());
        let mut scratch = FrozenRangeScratch::new();
        for probe in 0..40 {
            let x = probe as f64 * 21.0;
            let q = Rect::new(x, x * 0.8, x + 55.0, x * 0.8 + 70.0);
            let mut dynamic: Vec<usize> = Vec::new();
            tree.for_each_in(&q, |_, &id| dynamic.push(id));
            let mut frozen_hits: Vec<usize> = Vec::new();
            frozen.for_each_in_with(&mut scratch, &q, |_, &id| frozen_hits.push(id));
            assert_eq!(dynamic, frozen_hits, "probe {probe}");
        }
        assert!(scratch.capacity() > 0);
    }

    #[test]
    fn knn_order_matches_dynamic_exactly() {
        let tree = random_tree(0x5EED, 600);
        let frozen = tree.clone().freeze();
        let mut scratch = FrozenNearestScratch::new();
        for probe in 0..30 {
            let p = Point::new(probe as f64 * 31.0, probe as f64 * 23.0);
            let dynamic = tree.nearest_by(p, 7, |&id| center_distance(&tree, id, p));
            let froz =
                frozen.nearest_by_with(&mut scratch, p, 7, |&id| center_distance(&tree, id, p));
            let dyn_pairs: Vec<(f64, usize)> = dynamic.iter().map(|&(d, &id)| (d, id)).collect();
            let froz_pairs: Vec<(f64, usize)> = froz.iter().map(|&(d, &id)| (d, id)).collect();
            assert_eq!(dyn_pairs, froz_pairs, "probe {probe}");
        }
        assert!(scratch.capacity() > 0);
    }

    /// Exact distance from `p` to item `id`'s stored rectangle (dominates
    /// the bbox lower bound by construction).
    fn center_distance(tree: &RStarTree<usize>, id: usize, p: Point) -> f64 {
        let mut rect = None;
        tree.for_each_in(&tree.bbox(), |r, &i| {
            if i == id {
                rect = Some(*r);
            }
        });
        rect.expect("item present").distance_to_point(p)
    }

    #[test]
    fn within_radius_matches_dynamic() {
        let tree = random_tree(0xACE, 400);
        let frozen = tree.clone().freeze();
        let p = Point::new(450.0, 450.0);
        let a: Vec<usize> = tree
            .within_radius(p, 120.0)
            .iter()
            .map(|&(_, &i)| i)
            .collect();
        let b: Vec<usize> = frozen
            .within_radius(p, 120.0)
            .iter()
            .map(|&(_, &i)| i)
            .collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn bulk_loaded_tree_freezes_identically() {
        let items: Vec<(Rect, usize)> = (0..2000)
            .map(|i| {
                let x = (i % 50) as f64 * 7.0;
                let y = (i / 50) as f64 * 11.0;
                (Rect::new(x, y, x + 3.0, y + 3.0), i)
            })
            .collect();
        let tree = RStarTree::bulk_load(items);
        let frozen = tree.clone().freeze();
        for probe in 0..30 {
            let x = probe as f64 * 11.0;
            let q = Rect::new(x, x, x + 40.0, x + 40.0);
            let mut a = Vec::new();
            tree.for_each_in(&q, |_, &i| a.push(i));
            let mut b = Vec::new();
            frozen.for_each_in(&q, |_, &i| b.push(i));
            assert_eq!(a, b, "probe {probe}");
        }
        assert_eq!(frozen.count_in(&tree.bbox()), 2000);
    }

    #[test]
    fn chunked_scan_matches_scalar_reference_order() {
        // tree sizes straddle every leaf-slab remainder class around the
        // 8-wide chunk boundary
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 300, 801] {
            let tree = random_tree(0xC0FFEE ^ n as u64, n);
            let frozen = tree.freeze();
            let mut s_chunked = FrozenRangeScratch::new();
            let mut s_scalar = FrozenRangeScratch::new();
            for probe in 0..25 {
                let x = probe as f64 * 37.0;
                let q = Rect::new(x, x * 0.6, x + 90.0, x * 0.6 + 120.0);
                let mut chunked: Vec<usize> = Vec::new();
                frozen.for_each_in_lanes_with(&mut s_chunked, &q, |_, &id| chunked.push(id));
                let mut scalar: Vec<usize> = Vec::new();
                frozen.for_each_in_scalar_with(&mut s_scalar, &q, |_, &id| scalar.push(id));
                assert_eq!(chunked, scalar, "n={n} probe={probe}");
            }
        }
    }

    #[test]
    fn empty_query_yields_nothing() {
        let tree = random_tree(7, 100);
        let frozen = tree.freeze();
        assert!(frozen.query(&Rect::EMPTY).is_empty());
    }
}
