//! An R\*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990).
//!
//! This is the access method the paper applies to semantic regions
//! (Algorithm 1) and road segments (Algorithm 2). The implementation
//! follows the original R\* design:
//!
//! * **ChooseSubtree** — minimum *overlap* enlargement at the level above
//!   leaves, minimum *area* enlargement elsewhere (ties by smaller area);
//! * **Split** — axis chosen by minimum total margin over all candidate
//!   distributions, split index chosen by minimum overlap (ties by area);
//! * **Forced reinsertion** — on the first leaf overflow per insertion, the
//!   30% of entries farthest from the node center are removed and
//!   re-inserted, improving packing (internal overflows split directly — a
//!   standard simplification that keeps the tree quality within a percent
//!   of full R\* on our workloads);
//! * **STR bulk loading** — Sort-Tile-Recursive packing for building an
//!   index over millions of landuse cells in one pass.
//!
//! Queries: rectangle range search and best-first nearest-neighbor search
//! with an exact, caller-supplied item distance (the bounding-box distance
//! is used as the lower bound, which is admissible for any geometry
//! enclosed in its box).

use semitri_geo::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Tuning parameters of the tree.
#[derive(Debug, Clone, Copy)]
pub struct RStarParams {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per node after a split (`m`, typically 40% of `M`).
    pub min_entries: usize,
    /// Number of entries removed on forced reinsertion (typically 30% of `M`).
    pub reinsert_count: usize,
}

impl Default for RStarParams {
    fn default() -> Self {
        // M = 32: fits a node in a few cache lines of child boxes and keeps
        // the tree shallow for the million-cell landuse source.
        Self {
            max_entries: 32,
            min_entries: 13,    // 40% of M
            reinsert_count: 10, // 30% of M
        }
    }
}

impl RStarParams {
    fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries must be >= 4");
        assert!(
            self.min_entries >= 2 && self.min_entries <= self.max_entries / 2 + 1,
            "min_entries must be in [2, M/2+1]"
        );
        assert!(
            self.reinsert_count >= 1 && self.reinsert_count < self.max_entries,
            "reinsert_count must be in [1, M)"
        );
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Entry<T> {
    pub(crate) rect: Rect,
    pub(crate) item: T,
}

#[derive(Debug, Clone)]
pub(crate) struct Child<T> {
    pub(crate) rect: Rect,
    pub(crate) node: Box<Node<T>>,
}

#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    Leaf(Vec<Entry<T>>),
    Internal(Vec<Child<T>>),
}

impl<T> Node<T> {
    fn bbox(&self) -> Rect {
        match self {
            Node::Leaf(es) => es.iter().fold(Rect::EMPTY, |acc, e| acc.union(&e.rect)),
            Node::Internal(cs) => cs.iter().fold(Rect::EMPTY, |acc, c| acc.union(&c.rect)),
        }
    }
}

enum InsertOutcome<T> {
    /// Insertion absorbed; parent bbox may still need refreshing.
    Done,
    /// Node split; the new sibling must be added to the parent.
    Split(Child<T>),
    /// Forced reinsertion: these leaf entries were evicted and must be
    /// re-inserted from the root (without further reinsertion).
    Reinsert(Vec<Entry<T>>),
}

/// A reusable traversal stack for [`RStarTree::for_each_in_with`].
///
/// The annotation hot paths issue one range query per GPS fix; allocating a
/// traversal structure per query would dominate small-window queries. A
/// `RangeScratch` is created once per batch of queries (it borrows the tree
/// for `'t`, so it cannot outlive or dangle into it) and its backing stack
/// is reused across queries, making every query after the first
/// allocation-free.
#[derive(Debug)]
pub struct RangeScratch<'t, T> {
    stack: Vec<&'t Node<T>>,
}

impl<T> Default for RangeScratch<'_, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RangeScratch<'_, T> {
    /// Creates an empty scratch stack (no allocation until first use).
    pub fn new() -> Self {
        Self { stack: Vec::new() }
    }

    /// Stack slots currently reserved (diagnostics/tests).
    pub fn capacity(&self) -> usize {
        self.stack.capacity()
    }
}

/// Best-first search candidate: an unexpanded subtree (priced at its
/// bounding-box lower bound) or an exact item.
enum Cand<'a, T> {
    Node(&'a Node<T>),
    Item(&'a T),
}

/// Min-heap entry of the best-first nearest-neighbor search. Ordering
/// compares the distance *only* (reversed, because [`BinaryHeap`] is a
/// max-heap); ties are `Equal`, so pop order among equal distances is
/// decided purely by the heap's deterministic internal layout — the
/// property the frozen tree relies on to reproduce result order exactly.
struct HeapEntry<'a, T> {
    dist: f64,
    cand: Cand<'a, T>,
}

impl<T> PartialEq for HeapEntry<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl<T> Eq for HeapEntry<'_, T> {}
impl<T> PartialOrd for HeapEntry<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we need min-first
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

/// Reusable heap storage for [`RStarTree::nearest_by_with`].
///
/// The point layer resolves one POI per stop; allocating a fresh
/// [`BinaryHeap`] per query would dominate small lookups. The scratch
/// keeps the heap's backing buffer alive between calls (it borrows the
/// tree for `'t`, like [`RangeScratch`]), so every query after the first
/// is allocation-free.
pub struct NearestScratch<'t, T> {
    heap_buf: Vec<HeapEntry<'t, T>>,
}

impl<T> Default for NearestScratch<'_, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for NearestScratch<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NearestScratch")
            .field("capacity", &self.heap_buf.capacity())
            .finish()
    }
}

impl<T> NearestScratch<'_, T> {
    /// Creates an empty scratch (no allocation until first use).
    pub fn new() -> Self {
        Self {
            heap_buf: Vec::new(),
        }
    }

    /// Heap slots currently reserved (diagnostics/tests).
    pub fn capacity(&self) -> usize {
        self.heap_buf.capacity()
    }
}

/// An R\*-tree mapping bounding rectangles to items of type `T`.
///
/// ```
/// use semitri_geo::{Point, Rect};
/// use semitri_index::RStarTree;
///
/// let mut tree = RStarTree::new();
/// tree.insert(Rect::new(0.0, 0.0, 1.0, 1.0), "cell a");
/// tree.insert(Rect::new(5.0, 5.0, 6.0, 6.0), "cell b");
/// let hits = tree.query(&Rect::new(0.5, 0.5, 2.0, 2.0));
/// assert_eq!(hits.len(), 1);
/// assert_eq!(*hits[0].1, "cell a");
/// ```
#[derive(Debug, Clone)]
pub struct RStarTree<T> {
    root: Node<T>,
    len: usize,
    height: usize, // 1 = root is a leaf
    params: RStarParams,
    /// Bounding box of the whole tree, maintained eagerly (union on
    /// insert, recomputed from the root on removal) so [`RStarTree::bbox`]
    /// is O(1) for the setup/validation paths that call it repeatedly.
    root_bbox: Rect,
}

impl<T> Default for RStarTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RStarTree<T> {
    /// Creates an empty tree with default parameters.
    pub fn new() -> Self {
        Self::with_params(RStarParams::default())
    }

    /// Creates an empty tree with explicit parameters.
    ///
    /// # Panics
    /// Panics if the parameters are inconsistent (see [`RStarParams`]).
    pub fn with_params(params: RStarParams) -> Self {
        params.validate();
        Self {
            root: Node::Leaf(Vec::new()),
            len: 0,
            height: 1,
            params,
            root_bbox: Rect::EMPTY,
        }
    }

    /// The root node (test-internal: the cached-bbox oracle walks it).
    #[cfg(test)]
    pub(crate) fn root(&self) -> &Node<T> {
        &self.root
    }

    /// Consumes the tree into `(root, len, height, bbox)` for freezing.
    pub(crate) fn into_parts(self) -> (Node<T>, usize, usize, Rect) {
        (self.root, self.len, self.height, self.root_bbox)
    }

    /// Freezes the tree into its immutable, cache-packed snapshot (see
    /// [`FrozenRStarTree`](crate::FrozenRStarTree)): same items, same
    /// query results in the same order, flat arena storage.
    pub fn freeze(self) -> crate::frozen::FrozenRStarTree<T> {
        crate::frozen::FrozenRStarTree::from_dynamic(self)
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree holds no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = the root is a leaf). Exposed for tests and
    /// diagnostics.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Bounding box of the whole tree ([`Rect::EMPTY`] when empty).
    ///
    /// O(1): the box is cached and maintained across inserts and removals
    /// instead of re-folding the root's children on every call.
    pub fn bbox(&self) -> Rect {
        self.root_bbox
    }

    /// Inserts an item with its bounding rectangle.
    ///
    /// # Panics
    /// Panics if `rect` is empty or non-finite: indexing nothing is always a
    /// caller bug.
    pub fn insert(&mut self, rect: Rect, item: T) {
        assert!(
            !rect.is_empty() && rect.min_x.is_finite() && rect.max_y.is_finite(),
            "cannot index an empty or non-finite rectangle"
        );
        self.insert_entry(Entry { rect, item }, true);
        self.len += 1;
        // the tree bbox is exactly the union of every stored rectangle, so
        // one union keeps the cache exact without touching the root node
        self.root_bbox = self.root_bbox.union(&rect);
    }

    fn insert_entry(&mut self, entry: Entry<T>, allow_reinsert: bool) {
        let params = self.params;
        match Self::insert_rec(&mut self.root, entry, allow_reinsert, &params) {
            InsertOutcome::Done => {}
            InsertOutcome::Split(sibling) => self.grow_root(sibling),
            InsertOutcome::Reinsert(evicted) => {
                for e in evicted {
                    self.insert_entry(e, false);
                }
            }
        }
    }

    fn grow_root(&mut self, sibling: Child<T>) {
        let old_root = std::mem::replace(&mut self.root, Node::Internal(Vec::new()));
        let old_child = Child {
            rect: old_root.bbox(),
            node: Box::new(old_root),
        };
        self.root = Node::Internal(vec![old_child, sibling]);
        self.height += 1;
    }

    fn insert_rec(
        node: &mut Node<T>,
        entry: Entry<T>,
        allow_reinsert: bool,
        params: &RStarParams,
    ) -> InsertOutcome<T> {
        match node {
            Node::Leaf(entries) => {
                entries.push(entry);
                if entries.len() <= params.max_entries {
                    return InsertOutcome::Done;
                }
                if allow_reinsert {
                    return InsertOutcome::Reinsert(Self::evict_for_reinsert(entries, params));
                }
                let (left, right) = split_entries(std::mem::take(entries), params);
                *entries = left;
                InsertOutcome::Split(Child {
                    rect: right.iter().fold(Rect::EMPTY, |a, e| a.union(&e.rect)),
                    node: Box::new(Node::Leaf(right)),
                })
            }
            Node::Internal(children) => {
                let idx = choose_subtree(children, &entry.rect);
                let outcome =
                    Self::insert_rec(&mut children[idx].node, entry, allow_reinsert, params);
                children[idx].rect = children[idx].node.bbox();
                match outcome {
                    InsertOutcome::Done => InsertOutcome::Done,
                    InsertOutcome::Reinsert(es) => InsertOutcome::Reinsert(es),
                    InsertOutcome::Split(sibling) => {
                        children.push(sibling);
                        if children.len() <= params.max_entries {
                            return InsertOutcome::Done;
                        }
                        let (left, right) = split_children(std::mem::take(children), params);
                        *children = left;
                        InsertOutcome::Split(Child {
                            rect: right.iter().fold(Rect::EMPTY, |a, c| a.union(&c.rect)),
                            node: Box::new(Node::Internal(right)),
                        })
                    }
                }
            }
        }
    }

    /// Removes the `reinsert_count` entries whose centers are farthest from
    /// the node's bbox center (R\* forced reinsertion, "far reinsert").
    fn evict_for_reinsert(entries: &mut Vec<Entry<T>>, params: &RStarParams) -> Vec<Entry<T>> {
        let center = entries
            .iter()
            .fold(Rect::EMPTY, |a, e| a.union(&e.rect))
            .center();
        entries.sort_by(|a, b| {
            let da = a.rect.center().distance_sq(center);
            let db = b.rect.center().distance_sq(center);
            da.partial_cmp(&db).unwrap_or(Ordering::Equal)
        });
        let keep = entries.len() - params.reinsert_count;
        entries.split_off(keep)
    }

    /// All items whose rectangle intersects `query`, with their rectangles.
    pub fn query(&self, query: &Rect) -> Vec<(&Rect, &T)> {
        let mut out = Vec::new();
        self.for_each_in(query, |r, t| out.push((r, t)));
        out
    }

    /// Visits every item whose rectangle intersects `query`.
    pub fn for_each_in<'a>(&'a self, query: &Rect, mut f: impl FnMut(&'a Rect, &'a T)) {
        fn rec<'a, T>(node: &'a Node<T>, query: &Rect, f: &mut impl FnMut(&'a Rect, &'a T)) {
            match node {
                Node::Leaf(es) => {
                    for e in es {
                        if e.rect.intersects(query) {
                            f(&e.rect, &e.item);
                        }
                    }
                }
                Node::Internal(cs) => {
                    for c in cs {
                        if c.rect.intersects(query) {
                            rec(&c.node, query, f);
                        }
                    }
                }
            }
        }
        rec(&self.root, query, &mut f);
    }

    /// [`RStarTree::for_each_in`] threading a caller-owned traversal stack,
    /// so repeated range queries against the same tree perform no heap
    /// allocation once the stack has warmed up (the annotation hot paths
    /// issue one query per GPS fix).
    ///
    /// Items are visited in exactly the same order as [`RStarTree::for_each_in`]
    /// (depth-first, children in node order), so the two paths are
    /// interchangeable even for order-sensitive callers.
    pub fn for_each_in_with<'t>(
        &'t self,
        scratch: &mut RangeScratch<'t, T>,
        query: &Rect,
        mut f: impl FnMut(&'t Rect, &'t T),
    ) {
        scratch.stack.clear();
        scratch.stack.push(&self.root);
        while let Some(node) = scratch.stack.pop() {
            match node {
                Node::Leaf(es) => {
                    for e in es {
                        if e.rect.intersects(query) {
                            f(&e.rect, &e.item);
                        }
                    }
                }
                Node::Internal(cs) => {
                    // push in reverse so the pop order matches the
                    // recursive depth-first visit order
                    for c in cs.iter().rev() {
                        if c.rect.intersects(query) {
                            scratch.stack.push(&c.node);
                        }
                    }
                }
            }
        }
    }

    /// Number of items whose rectangle intersects `query`.
    pub fn count_in(&self, query: &Rect) -> usize {
        let mut n = 0;
        self.for_each_in(query, |_, _| n += 1);
        n
    }

    /// The `k` items nearest to `p` under the caller-supplied exact distance
    /// `dist`, returned as `(distance, item)` sorted ascending.
    ///
    /// `dist` must never be smaller than the distance from `p` to the item's
    /// bounding rectangle (true for any geometry contained in its box);
    /// the bbox distance is used as an admissible lower bound for pruning.
    pub fn nearest_by<'a>(
        &'a self,
        p: Point,
        k: usize,
        dist: impl FnMut(&'a T) -> f64,
    ) -> Vec<(f64, &'a T)> {
        self.nearest_by_with(&mut NearestScratch::new(), p, k, dist)
    }

    /// [`RStarTree::nearest_by`] reusing a caller-owned heap buffer, so
    /// repeated queries (one POI lookup per stop in the point layer)
    /// allocate nothing once the heap has warmed up. Results — values *and*
    /// order — are identical to [`RStarTree::nearest_by`].
    pub fn nearest_by_with<'t>(
        &'t self,
        scratch: &mut NearestScratch<'t, T>,
        p: Point,
        k: usize,
        mut dist: impl FnMut(&'t T) -> f64,
    ) -> Vec<(f64, &'t T)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }

        // Best-first search over a min-heap of (lower-bound distance, node),
        // interleaved with exact item candidates. The heap adopts the
        // scratch buffer (empty, so heapify is free) and returns it below.
        scratch.heap_buf.clear();
        let mut heap = BinaryHeap::from(std::mem::take(&mut scratch.heap_buf));
        heap.push(HeapEntry {
            dist: 0.0,
            cand: Cand::Node(&self.root),
        });
        let mut out: Vec<(f64, &T)> = Vec::with_capacity(k);

        while let Some(HeapEntry { dist: d, cand }) = heap.pop() {
            if out.len() == k {
                break;
            }
            match cand {
                Cand::Item(item) => out.push((d, item)),
                Cand::Node(Node::Leaf(es)) => {
                    for e in es {
                        let exact = dist(&e.item);
                        debug_assert!(
                            exact + 1e-9 >= e.rect.distance_to_point(p),
                            "dist() must dominate the bbox lower bound"
                        );
                        heap.push(HeapEntry {
                            dist: exact,
                            cand: Cand::Item(&e.item),
                        });
                    }
                }
                Cand::Node(Node::Internal(cs)) => {
                    for c in cs {
                        heap.push(HeapEntry {
                            dist: c.rect.distance_to_point(p),
                            cand: Cand::Node(&c.node),
                        });
                    }
                }
            }
        }
        let mut buf = heap.into_vec();
        buf.clear();
        scratch.heap_buf = buf;
        out
    }

    /// Visits every item whose bounding rectangle lies within `radius` of
    /// `p` (coarse, bbox-level filter — the caller refines with exact
    /// geometry), without materializing a `Vec`.
    pub fn for_each_within_radius<'a>(
        &'a self,
        p: Point,
        radius: f64,
        mut f: impl FnMut(&'a Rect, &'a T),
    ) {
        let window = Rect::from_point(p).inflate(radius);
        self.for_each_in(&window, |r, t| {
            if r.distance_to_point(p) <= radius {
                f(r, t);
            }
        });
    }

    /// All items whose bounding rectangle lies within `radius` of `p`
    /// (coarse, bbox-level filter). The caller refines with exact geometry.
    /// Iterating callers should prefer [`RStarTree::for_each_within_radius`].
    pub fn within_radius(&self, p: Point, radius: f64) -> Vec<(&Rect, &T)> {
        let mut out = Vec::new();
        self.for_each_within_radius(p, radius, |r, t| out.push((r, t)));
        out
    }

    /// Builds a tree from `(rect, item)` pairs with Sort-Tile-Recursive
    /// packing. Much faster than repeated insertion and produces near-100%
    /// node utilisation — used for the large, static geographic sources.
    ///
    /// # Panics
    /// Panics if any rectangle is empty or non-finite.
    pub fn bulk_load(items: Vec<(Rect, T)>) -> Self {
        Self::bulk_load_with_params(items, RStarParams::default())
    }

    /// [`RStarTree::bulk_load`] with explicit parameters.
    pub fn bulk_load_with_params(items: Vec<(Rect, T)>, params: RStarParams) -> Self {
        params.validate();
        let len = items.len();
        if len == 0 {
            return Self::with_params(params);
        }
        for (r, _) in &items {
            assert!(
                !r.is_empty() && r.min_x.is_finite() && r.max_y.is_finite(),
                "cannot index an empty or non-finite rectangle"
            );
        }
        let cap = params.max_entries;
        let mut entries: Vec<Entry<T>> = items
            .into_iter()
            .map(|(rect, item)| Entry { rect, item })
            .collect();

        // --- pack leaves with STR ---
        let n_leaves = len.div_ceil(cap);
        let n_slices = (n_leaves as f64).sqrt().ceil() as usize;
        let slice_size = len.div_ceil(n_slices);
        entries.sort_by(|a, b| cmp_f64(a.rect.center().x, b.rect.center().x));

        let mut leaves: Vec<Child<T>> = Vec::with_capacity(n_leaves);
        let mut rest = entries;
        while !rest.is_empty() {
            let take = slice_size.min(rest.len());
            let tail = rest.split_off(take);
            let mut slice = std::mem::replace(&mut rest, tail);
            slice.sort_by(|a, b| cmp_f64(a.rect.center().y, b.rect.center().y));
            let mut slice_rest = slice;
            while !slice_rest.is_empty() {
                let take = cap.min(slice_rest.len());
                let tail = slice_rest.split_off(take);
                let leaf_entries = std::mem::replace(&mut slice_rest, tail);
                let rect = leaf_entries
                    .iter()
                    .fold(Rect::EMPTY, |a, e| a.union(&e.rect));
                leaves.push(Child {
                    rect,
                    node: Box::new(Node::Leaf(leaf_entries)),
                });
            }
        }

        // --- pack upper levels ---
        let mut height = 1;
        let mut level = leaves;
        while level.len() > 1 {
            height += 1;
            let n_nodes = level.len().div_ceil(cap);
            let n_slices = (n_nodes as f64).sqrt().ceil() as usize;
            let slice_size = level.len().div_ceil(n_slices);
            level.sort_by(|a, b| cmp_f64(a.rect.center().x, b.rect.center().x));
            let mut next: Vec<Child<T>> = Vec::with_capacity(n_nodes);
            let mut rest = level;
            while !rest.is_empty() {
                let take = slice_size.min(rest.len());
                let tail = rest.split_off(take);
                let mut slice = std::mem::replace(&mut rest, tail);
                slice.sort_by(|a, b| cmp_f64(a.rect.center().y, b.rect.center().y));
                let mut slice_rest = slice;
                while !slice_rest.is_empty() {
                    let take = cap.min(slice_rest.len());
                    let tail = slice_rest.split_off(take);
                    let group = std::mem::replace(&mut slice_rest, tail);
                    let rect = group.iter().fold(Rect::EMPTY, |a, c| a.union(&c.rect));
                    next.push(Child {
                        rect,
                        node: Box::new(Node::Internal(group)),
                    });
                }
            }
            level = next;
        }

        let root = match level.pop() {
            Some(only) if height > 1 => *only.node,
            Some(only) => *only.node, // single leaf
            None => Node::Leaf(Vec::new()),
        };
        let root_bbox = root.bbox();
        Self {
            root,
            len,
            height,
            params,
            root_bbox,
        }
    }

    /// Removes one item whose stored rectangle equals `rect` and whose
    /// value satisfies `matches`, returning it. Underfull nodes are
    /// condensed: their surviving entries are re-inserted (the classical
    /// R-tree CondenseTree), so the structural invariants hold afterwards.
    ///
    /// Returns `None` when no such item exists.
    pub fn remove_one(&mut self, rect: &Rect, mut matches: impl FnMut(&T) -> bool) -> Option<T> {
        let min = self.params.min_entries;
        let outcome = Self::remove_rec(&mut self.root, rect, &mut matches, min, true);
        let (item, orphans) = outcome?;
        self.len -= 1;
        for e in orphans {
            self.insert_entry(e, false);
        }
        // shrink the root while it is an internal node with a single child
        loop {
            match &mut self.root {
                Node::Internal(cs) if cs.len() == 1 => {
                    let only = cs.pop().expect("one child");
                    self.root = *only.node;
                    self.height -= 1;
                }
                _ => break,
            }
        }
        // a removal can shrink the bbox anywhere, so recompute from the
        // root's child rects (O(M) — still far cheaper than the removal)
        self.root_bbox = self.root.bbox();
        Some(item)
    }

    /// Recursive removal; returns the removed item plus orphaned leaf
    /// entries from condensed subtrees. `is_root` relaxes the minimum
    /// occupancy at the top.
    fn remove_rec(
        node: &mut Node<T>,
        rect: &Rect,
        matches: &mut impl FnMut(&T) -> bool,
        min: usize,
        is_root: bool,
    ) -> Option<(T, Vec<Entry<T>>)> {
        match node {
            Node::Leaf(entries) => {
                let idx = entries
                    .iter()
                    .position(|e| e.rect == *rect && matches(&e.item))?;
                let removed = entries.remove(idx);
                Some((removed.item, Vec::new()))
            }
            Node::Internal(children) => {
                let mut result: Option<(T, Vec<Entry<T>>)> = None;
                let mut prune_idx: Option<usize> = None;
                for (ci, child) in children.iter_mut().enumerate() {
                    // intersection is the full descent test: containment
                    // implies intersection, so checking both was redundant
                    if !child.rect.intersects(rect) {
                        continue;
                    }
                    if let Some((item, mut orphans)) =
                        Self::remove_rec(&mut child.node, rect, matches, min, false)
                    {
                        // condense: an underfull child dissolves into
                        // orphaned leaf entries for re-insertion
                        let child_len = match &*child.node {
                            Node::Leaf(es) => es.len(),
                            Node::Internal(cs) => cs.len(),
                        };
                        if child_len < min {
                            Self::collect_leaf_entries(&mut child.node, &mut orphans);
                            prune_idx = Some(ci);
                        } else {
                            child.rect = child.node.bbox();
                        }
                        result = Some((item, orphans));
                        break;
                    }
                }
                let (item, orphans) = result?;
                if let Some(ci) = prune_idx {
                    children.remove(ci);
                }
                // note: if this node itself is now underfull, the caller's
                // child_len check dissolves it the same way (root exempt)
                let _ = is_root;
                Some((item, orphans))
            }
        }
    }

    /// Drains every leaf entry of a subtree into `out`.
    fn collect_leaf_entries(node: &mut Node<T>, out: &mut Vec<Entry<T>>) {
        match node {
            Node::Leaf(es) => out.append(es),
            Node::Internal(cs) => {
                for c in cs.iter_mut() {
                    Self::collect_leaf_entries(&mut c.node, out);
                }
                cs.clear();
            }
        }
    }

    /// Verifies structural invariants (bbox containment, node occupancy,
    /// uniform leaf depth). Used by tests; O(n).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        fn rec<T>(
            node: &Node<T>,
            depth: usize,
            leaf_depth: &mut Option<usize>,
            root: bool,
            max: usize,
        ) {
            match node {
                Node::Leaf(es) => {
                    match *leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(d, depth, "leaves at different depths"),
                    }
                    assert!(es.len() <= max, "leaf overflow");
                }
                Node::Internal(cs) => {
                    assert!(!cs.is_empty(), "empty internal node");
                    assert!(cs.len() <= max, "internal overflow");
                    assert!(cs.len() >= 2 || root, "underfull internal node");
                    for c in cs {
                        assert!(
                            c.rect.contains_rect(&c.node.bbox()),
                            "child bbox does not cover subtree"
                        );
                        rec(&c.node, depth + 1, leaf_depth, false, max);
                    }
                }
            }
        }
        let mut leaf_depth = None;
        rec(
            &self.root,
            1,
            &mut leaf_depth,
            true,
            self.params.max_entries,
        );
        if let Some(d) = leaf_depth {
            assert_eq!(d, self.height, "height bookkeeping wrong");
        }
        // the cached bbox must match the fold exactly (unions of the same
        // rect set are order-independent min/max, so bitwise equality holds)
        assert_eq!(self.root_bbox, self.root.bbox(), "cached root bbox stale");
        let mut counted = 0;
        self.for_each_in(&self.bbox().inflate(1.0), |_, _| counted += 1);
        if !self.is_empty() {
            assert_eq!(counted, self.len, "len bookkeeping wrong");
        }
    }
}

#[inline]
fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

/// R\* ChooseSubtree: when children are leaves, minimize overlap
/// enlargement; otherwise minimize area enlargement. Ties broken by area
/// enlargement then by area.
fn choose_subtree<T>(children: &[Child<T>], rect: &Rect) -> usize {
    let points_to_leaves = matches!(&*children[0].node, Node::Leaf(_));
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, c) in children.iter().enumerate() {
        let enlarged = c.rect.union(rect);
        let area_enlargement = enlarged.area() - c.rect.area();
        let key = if points_to_leaves {
            // overlap enlargement against siblings
            let mut before = 0.0;
            let mut after = 0.0;
            for (j, o) in children.iter().enumerate() {
                if i == j {
                    continue;
                }
                before += c.rect.intersection_area(&o.rect);
                after += enlarged.intersection_area(&o.rect);
            }
            (after - before, area_enlargement, c.rect.area())
        } else {
            (area_enlargement, c.rect.area(), 0.0)
        };
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Generic R\* split over anything with a rectangle. Returns the two groups.
fn rstar_split<E>(
    mut items: Vec<E>,
    rect_of: impl Fn(&E) -> Rect,
    params: &RStarParams,
) -> (Vec<E>, Vec<E>) {
    let m = params.min_entries;
    let total = items.len();
    debug_assert!(total > params.max_entries);

    // ChooseSplitAxis: for each axis and each sort (by min, by max), sum the
    // margins of all legal distributions; pick the axis with least sum.
    let margin_for = |items: &[E], key_min: bool, axis_x: bool| -> f64 {
        let mut idx: Vec<usize> = (0..items.len()).collect();
        idx.sort_by(|&a, &b| {
            let (ra, rb) = (rect_of(&items[a]), rect_of(&items[b]));
            let ka = match (axis_x, key_min) {
                (true, true) => ra.min_x,
                (true, false) => ra.max_x,
                (false, true) => ra.min_y,
                (false, false) => ra.max_y,
            };
            let kb = match (axis_x, key_min) {
                (true, true) => rb.min_x,
                (true, false) => rb.max_x,
                (false, true) => rb.min_y,
                (false, false) => rb.max_y,
            };
            cmp_f64(ka, kb)
        });
        let mut sum = 0.0;
        for k in m..=(total - m) {
            let left = idx[..k]
                .iter()
                .fold(Rect::EMPTY, |a, &i| a.union(&rect_of(&items[i])));
            let right = idx[k..]
                .iter()
                .fold(Rect::EMPTY, |a, &i| a.union(&rect_of(&items[i])));
            sum += left.margin() + right.margin();
        }
        sum
    };

    let x_margin = margin_for(&items, true, true) + margin_for(&items, false, true);
    let y_margin = margin_for(&items, true, false) + margin_for(&items, false, false);
    let axis_x = x_margin <= y_margin;

    // ChooseSplitIndex on the chosen axis: try both sort keys, pick the
    // distribution with minimum overlap, ties by minimum total area.
    let mut best: Option<(f64, f64, bool, usize)> = None; // (overlap, area, key_min, k)
    for key_min in [true, false] {
        items.sort_by(|a, b| {
            let (ra, rb) = (rect_of(a), rect_of(b));
            let ka = match (axis_x, key_min) {
                (true, true) => ra.min_x,
                (true, false) => ra.max_x,
                (false, true) => ra.min_y,
                (false, false) => ra.max_y,
            };
            let kb = match (axis_x, key_min) {
                (true, true) => rb.min_x,
                (true, false) => rb.max_x,
                (false, true) => rb.min_y,
                (false, false) => rb.max_y,
            };
            cmp_f64(ka, kb)
        });
        for k in m..=(total - m) {
            let left = items[..k]
                .iter()
                .fold(Rect::EMPTY, |a, e| a.union(&rect_of(e)));
            let right = items[k..]
                .iter()
                .fold(Rect::EMPTY, |a, e| a.union(&rect_of(e)));
            let overlap = left.intersection_area(&right);
            let area = left.area() + right.area();
            if best.is_none_or(|(bo, ba, _, _)| (overlap, area) < (bo, ba)) {
                best = Some((overlap, area, key_min, k));
            }
        }
    }
    let (_, _, key_min, k) = best.expect("at least one distribution");
    // re-sort with the winning key (items may currently be sorted by max)
    items.sort_by(|a, b| {
        let (ra, rb) = (rect_of(a), rect_of(b));
        let ka = match (axis_x, key_min) {
            (true, true) => ra.min_x,
            (true, false) => ra.max_x,
            (false, true) => ra.min_y,
            (false, false) => ra.max_y,
        };
        let kb = match (axis_x, key_min) {
            (true, true) => rb.min_x,
            (true, false) => rb.max_x,
            (false, true) => rb.min_y,
            (false, false) => rb.max_y,
        };
        cmp_f64(ka, kb)
    });
    let right = items.split_off(k);
    (items, right)
}

fn split_entries<T>(
    entries: Vec<Entry<T>>,
    params: &RStarParams,
) -> (Vec<Entry<T>>, Vec<Entry<T>>) {
    rstar_split(entries, |e| e.rect, params)
}

fn split_children<T>(
    children: Vec<Child<T>>,
    params: &RStarParams,
) -> (Vec<Child<T>>, Vec<Child<T>>) {
    rstar_split(children, |c| c.rect, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt_rect(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    #[test]
    fn empty_tree_queries() {
        let tree: RStarTree<u32> = RStarTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(tree.nearest_by(Point::ORIGIN, 3, |_| 0.0).is_empty());
        tree.check_invariants();
    }

    #[test]
    fn single_item() {
        let mut tree = RStarTree::new();
        tree.insert(pt_rect(5.0, 5.0), 42u32);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.query(&Rect::new(0.0, 0.0, 10.0, 10.0)).len(), 1);
        assert!(tree.query(&Rect::new(6.0, 6.0, 10.0, 10.0)).is_empty());
        tree.check_invariants();
    }

    #[test]
    fn grid_insert_and_range_query() {
        let mut tree = RStarTree::new();
        for i in 0..40 {
            for j in 0..40 {
                tree.insert(pt_rect(i as f64, j as f64), (i, j));
            }
        }
        assert_eq!(tree.len(), 1600);
        assert!(tree.height() > 1);
        tree.check_invariants();

        let hits = tree.query(&Rect::new(10.0, 10.0, 14.0, 12.0));
        assert_eq!(hits.len(), 5 * 3);
        for (_, &(i, j)) in &hits {
            assert!((10..=14).contains(&i) && (10..=12).contains(&j));
        }
    }

    #[test]
    fn query_matches_brute_force() {
        // deterministic pseudo-random rects via an LCG, no rand dependency
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let mut items = Vec::new();
        for id in 0..500 {
            let x = next() * 1000.0;
            let y = next() * 1000.0;
            let w = next() * 20.0;
            let h = next() * 20.0;
            items.push((Rect::new(x, y, x + w, y + h), id));
        }
        let mut tree = RStarTree::new();
        for (r, id) in &items {
            tree.insert(*r, *id);
        }
        tree.check_invariants();

        for probe in 0..50 {
            let x = (probe as f64) * 19.0;
            let q = Rect::new(x, x * 0.7, x + 60.0, x * 0.7 + 45.0);
            let mut expected: Vec<i32> = items
                .iter()
                .filter(|(r, _)| r.intersects(&q))
                .map(|&(_, id)| id)
                .collect();
            let mut got: Vec<i32> = tree.query(&q).iter().map(|&(_, &id)| id).collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(expected, got, "probe {probe}");
        }
    }

    #[test]
    fn nearest_by_returns_sorted_exact_neighbors() {
        let mut tree = RStarTree::new();
        for i in 0..100 {
            let p = Point::new((i % 10) as f64 * 10.0, (i / 10) as f64 * 10.0);
            tree.insert(Rect::from_point(p), p);
        }
        let probe = Point::new(34.0, 27.0);
        let got = tree.nearest_by(probe, 4, |p| p.distance(probe));
        assert_eq!(got.len(), 4);
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // brute-force cross-check of the closest one
        let mut best = f64::INFINITY;
        tree.for_each_in(&tree.bbox(), |_, p| best = best.min(p.distance(probe)));
        assert_eq!(got[0].0, best);
    }

    #[test]
    fn nearest_by_k_larger_than_len() {
        let mut tree = RStarTree::new();
        tree.insert(pt_rect(0.0, 0.0), 1u8);
        tree.insert(pt_rect(1.0, 0.0), 2u8);
        let got = tree.nearest_by(Point::ORIGIN, 10, |&v| v as f64);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn within_radius_filters_by_bbox_distance() {
        let mut tree = RStarTree::new();
        for i in 0..20 {
            tree.insert(pt_rect(i as f64, 0.0), i);
        }
        let hits = tree.within_radius(Point::new(5.0, 0.0), 2.5);
        let mut ids: Vec<i32> = hits.iter().map(|&(_, &i)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn bulk_load_matches_insert_queries() {
        let items: Vec<(Rect, usize)> = (0..2000)
            .map(|i| {
                let x = (i % 50) as f64 * 7.0;
                let y = (i / 50) as f64 * 11.0;
                (Rect::new(x, y, x + 3.0, y + 3.0), i)
            })
            .collect();
        let bulk = RStarTree::bulk_load(items.clone());
        assert_eq!(bulk.len(), 2000);
        bulk.check_invariants();

        let mut inc = RStarTree::new();
        for (r, id) in items {
            inc.insert(r, id);
        }
        inc.check_invariants();

        for probe in 0..30 {
            let x = probe as f64 * 11.0;
            let q = Rect::new(x, x, x + 40.0, x + 40.0);
            let mut a: Vec<usize> = bulk.query(&q).iter().map(|&(_, &i)| i).collect();
            let mut b: Vec<usize> = inc.query(&q).iter().map(|&(_, &i)| i).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let t: RStarTree<u8> = RStarTree::bulk_load(vec![]);
        assert!(t.is_empty());
        t.check_invariants();

        let t = RStarTree::bulk_load(vec![(pt_rect(1.0, 1.0), 7u8)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.check_invariants();
        assert_eq!(t.query(&Rect::new(0.0, 0.0, 2.0, 2.0)).len(), 1);
    }

    #[test]
    fn bulk_load_large_stays_shallow() {
        let items: Vec<(Rect, u32)> = (0..100_000)
            .map(|i| {
                let x = (i % 400) as f64;
                let y = (i / 400) as f64;
                (pt_rect(x, y), i)
            })
            .collect();
        let t = RStarTree::bulk_load(items);
        t.check_invariants();
        // ceil(log_32(100000/32)) + 1 ≈ 4
        assert!(t.height() <= 4, "height {}", t.height());
    }

    #[test]
    #[should_panic(expected = "empty or non-finite")]
    fn insert_rejects_empty_rect() {
        let mut t = RStarTree::new();
        t.insert(Rect::EMPTY, 0u8);
    }

    #[test]
    #[should_panic(expected = "max_entries")]
    fn params_validated() {
        let _ = RStarTree::<u8>::with_params(RStarParams {
            max_entries: 2,
            min_entries: 1,
            reinsert_count: 1,
        });
    }

    #[test]
    fn remove_one_basic() {
        let mut t = RStarTree::new();
        for i in 0..200u32 {
            t.insert(pt_rect((i % 20) as f64, (i / 20) as f64), i);
        }
        let target = pt_rect(7.0, 3.0); // item 67
        let removed = t.remove_one(&target, |&v| v == 67);
        assert_eq!(removed, Some(67));
        assert_eq!(t.len(), 199);
        t.check_invariants();
        assert!(t.query(&target).iter().all(|&(_, &v)| v != 67));
        // removing again finds nothing
        assert_eq!(t.remove_one(&target, |&v| v == 67), None);
        assert_eq!(t.len(), 199);
    }

    #[test]
    fn remove_all_items_one_by_one() {
        let params = RStarParams {
            max_entries: 4,
            min_entries: 2,
            reinsert_count: 1,
        };
        let mut t = RStarTree::with_params(params);
        let items: Vec<(Rect, u32)> = (0..100)
            .map(|i| (pt_rect((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0), i))
            .collect();
        for &(r, v) in &items {
            t.insert(r, v);
        }
        // remove in an interleaved order to stress condensation
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by_key(|&i| (i * 37) % 100);
        for (n_removed, &i) in order.iter().enumerate() {
            let (r, v) = items[i];
            assert_eq!(t.remove_one(&r, |&x| x == v), Some(v), "item {v}");
            assert_eq!(t.len(), items.len() - n_removed - 1);
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn remove_respects_predicate_on_duplicate_rects() {
        let mut t = RStarTree::new();
        let r = pt_rect(5.0, 5.0);
        t.insert(r, "a");
        t.insert(r, "b");
        assert_eq!(t.remove_one(&r, |&v| v == "b"), Some("b"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.query(&r), vec![(&r, &"a")]);
    }

    #[test]
    fn remove_then_query_matches_brute_force() {
        let mut state = 0x3333u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let mut items: Vec<(Rect, usize)> = (0..300)
            .map(|id| {
                let x = next() * 500.0;
                let y = next() * 500.0;
                (Rect::new(x, y, x + next() * 10.0, y + next() * 10.0), id)
            })
            .collect();
        let mut t = RStarTree::new();
        for &(r, id) in &items {
            t.insert(r, id);
        }
        // remove a third of them
        for k in (0..items.len()).rev().step_by(3) {
            let (r, id) = items.remove(k);
            assert_eq!(t.remove_one(&r, |&v| v == id), Some(id));
        }
        t.check_invariants();
        for probe in 0..20 {
            let x = probe as f64 * 23.0;
            let q = Rect::new(x, x * 0.6, x + 70.0, x * 0.6 + 50.0);
            let mut expected: Vec<usize> = items
                .iter()
                .filter(|(r, _)| r.intersects(&q))
                .map(|&(_, id)| id)
                .collect();
            let mut got: Vec<usize> = t.query(&q).iter().map(|&(_, &id)| id).collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(expected, got, "probe {probe}");
        }
    }

    #[test]
    fn for_each_in_with_matches_recursive_order_exactly() {
        // deterministic pseudo-random rects via an LCG, no rand dependency
        let mut state = 0xBEEFu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let mut tree = RStarTree::new();
        for id in 0..800 {
            let x = next() * 900.0;
            let y = next() * 900.0;
            tree.insert(Rect::new(x, y, x + next() * 15.0, y + next() * 15.0), id);
        }
        let mut scratch = RangeScratch::new();
        for probe in 0..40 {
            let x = probe as f64 * 21.0;
            let q = Rect::new(x, x * 0.8, x + 55.0, x * 0.8 + 70.0);
            let mut recursive: Vec<i32> = Vec::new();
            tree.for_each_in(&q, |_, &id| recursive.push(id));
            let mut iterative: Vec<i32> = Vec::new();
            tree.for_each_in_with(&mut scratch, &q, |_, &id| iterative.push(id));
            // identical items in the identical visit order
            assert_eq!(recursive, iterative, "probe {probe}");
        }
        // the reused scratch warmed up once and stays allocated
        assert!(scratch.capacity() > 0);
    }

    #[test]
    fn for_each_in_with_on_empty_and_single() {
        let tree: RStarTree<u8> = RStarTree::new();
        let mut scratch = RangeScratch::new();
        let mut n = 0;
        tree.for_each_in_with(&mut scratch, &Rect::new(0.0, 0.0, 1.0, 1.0), |_, _| n += 1);
        assert_eq!(n, 0);

        let mut tree = RStarTree::new();
        tree.insert(pt_rect(0.5, 0.5), 1u8);
        let mut scratch = RangeScratch::new();
        tree.for_each_in_with(&mut scratch, &Rect::new(0.0, 0.0, 1.0, 1.0), |_, _| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn cached_bbox_tracks_inserts_and_removals_exactly() {
        // regression: bbox() is now a cached field — it must stay bitwise
        // equal to the root fold through every mutation path (insert with
        // forced reinsertion, bulk load, removal with condensation)
        let mut t = RStarTree::new();
        assert!(t.bbox().is_empty());
        let items: Vec<(Rect, u32)> = (0..150)
            .map(|i| {
                let x = ((i * 67) % 97) as f64 * 11.0;
                let y = ((i * 29) % 83) as f64 * 7.0;
                (Rect::new(x, y, x + 5.0, y + 3.0), i)
            })
            .collect();
        for &(r, v) in &items {
            t.insert(r, v);
            assert_eq!(t.bbox(), t.root().bbox(), "after inserting {v}");
        }
        let bulk = RStarTree::bulk_load(items.clone());
        assert_eq!(bulk.bbox(), bulk.root().bbox());
        assert_eq!(bulk.bbox(), t.bbox());
        // removing the extreme item must shrink the cached bbox too
        for &(r, v) in items.iter().step_by(7) {
            assert_eq!(t.remove_one(&r, |&x| x == v), Some(v));
            assert_eq!(t.bbox(), t.root().bbox(), "after removing {v}");
        }
        t.check_invariants();
    }

    #[test]
    fn nearest_by_with_reuses_heap_and_matches_nearest_by() {
        let mut tree = RStarTree::new();
        for i in 0..500u32 {
            let p = Point::new(((i * 13) % 101) as f64 * 9.0, ((i * 7) % 89) as f64 * 9.0);
            tree.insert(Rect::from_point(p), (i, p));
        }
        let mut scratch = NearestScratch::new();
        for probe in 0..25 {
            let p = Point::new(probe as f64 * 37.0, probe as f64 * 29.0);
            let plain = tree.nearest_by(p, 5, |&(_, q)| q.distance(p));
            let reused = tree.nearest_by_with(&mut scratch, p, 5, |&(_, q)| q.distance(p));
            // identical values in the identical order
            assert_eq!(plain, reused, "probe {probe}");
        }
        assert!(scratch.capacity() > 0, "heap buffer retained across calls");
    }

    #[test]
    fn for_each_within_radius_streams_same_set_as_within_radius() {
        let mut tree = RStarTree::new();
        for i in 0..200 {
            tree.insert(pt_rect((i % 20) as f64 * 4.0, (i / 20) as f64 * 4.0), i);
        }
        let p = Point::new(31.0, 17.0);
        let collected = tree.within_radius(p, 13.0);
        let mut streamed = Vec::new();
        tree.for_each_within_radius(p, 13.0, |r, t| streamed.push((r, t)));
        assert_eq!(collected, streamed);
        assert!(!streamed.is_empty());
    }

    #[test]
    fn count_in_equals_query_len() {
        let mut t = RStarTree::new();
        for i in 0..300 {
            t.insert(pt_rect((i % 20) as f64, (i / 20) as f64), i);
        }
        let q = Rect::new(3.0, 3.0, 9.0, 9.0);
        assert_eq!(t.count_in(&q), t.query(&q).len());
    }
}
