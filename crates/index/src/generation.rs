//! Generation-swapped snapshots: `Arc` double-buffering for live updates.
//!
//! The frozen indexes ([`FrozenRStarTree`], [`CellOracle`]) are immutable
//! by design — that is what makes them fast and shareable across worker
//! threads without locks. A long-running service, however, must absorb
//! road edits, new POIs and landuse revisions while annotating. This
//! module supplies the missing piece: a **generation handle** that lets a
//! background rebuild freeze generation `N+1` while readers keep
//! annotating against generation `N`, then swap the two atomically.
//!
//! The protocol:
//!
//! 1. Mutations accumulate in a side log owned by the layer above (see
//!    `LiveSeMiTri` in `semitri-core`); readers never see them directly.
//! 2. A rebuild materializes a complete new snapshot — frozen trees *and*
//!    the per-generation [`CellOracle`] arenas — off to the side.
//! 3. [`GenerationHandle::publish`] swaps the new snapshot in behind a
//!    short write lock. Readers that already [pinned](GenerationHandle::pin)
//!    generation `N` keep their `Arc` and finish on it; every later pin
//!    observes `N+1`.
//! 4. The handle remembers the *retired* generation (at most one), so at
//!    any instant at most two generations are reachable through it:
//!    memory stays bounded at two live worlds plus whatever in-flight
//!    readers still pin.
//!
//! The lock is held only for the pointer swap — never during a rebuild and
//! never while annotating — so publishing does not pause annotation.

use std::sync::{Arc, Mutex, RwLock};

use crate::{CellOracle, FrozenRStarTree, OracleMode, RStarTree};

/// Monotonic identifier of one published snapshot generation. Generation 0
/// is the snapshot the handle was created with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GenerationId(pub u64);

impl std::fmt::Display for GenerationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// One immutable snapshot world, tagged with the generation it belongs to.
/// Readers hold these through `Arc<Generation<S>>`; the snapshot is
/// dropped when the last pin releases it.
#[derive(Debug)]
pub struct Generation<S> {
    id: GenerationId,
    snapshot: S,
}

impl<S> Generation<S> {
    /// The generation tag.
    #[inline]
    pub fn id(&self) -> GenerationId {
        self.id
    }

    /// The snapshot payload.
    #[inline]
    pub fn snapshot(&self) -> &S {
        &self.snapshot
    }
}

/// Double-buffered handle to the current snapshot generation.
///
/// `pin()` is the only read-side operation and costs one `RwLock` read
/// acquisition plus an `Arc` clone; annotation then proceeds entirely on
/// the pinned generation with zero further synchronization. `publish()`
/// installs a new generation and retires the previous one.
#[derive(Debug)]
pub struct GenerationHandle<S> {
    current: RwLock<Arc<Generation<S>>>,
    /// The previously-current generation. Keeping exactly one retired
    /// generation alive here bounds handle-reachable memory at two worlds
    /// while guaranteeing that a reader pinned just before a swap still
    /// shares its world with the handle (useful for diagnostics/tests);
    /// older generations die as soon as their last external pin drops.
    retired: Mutex<Option<Arc<Generation<S>>>>,
}

impl<S> GenerationHandle<S> {
    /// Wraps an initial snapshot as generation 0.
    pub fn new(snapshot: S) -> Self {
        Self {
            current: RwLock::new(Arc::new(Generation {
                id: GenerationId(0),
                snapshot,
            })),
            retired: Mutex::new(None),
        }
    }

    /// Pins the current generation: the returned `Arc` keeps that whole
    /// snapshot world alive for as long as the caller holds it, regardless
    /// of how many publishes happen in the meantime. Pin once per
    /// trajectory (or per streaming episode), not per index probe.
    pub fn pin(&self) -> Arc<Generation<S>> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The id of the current generation (one lock read; for metrics and
    /// health endpoints).
    pub fn current_id(&self) -> GenerationId {
        self.current.read().unwrap_or_else(|e| e.into_inner()).id
    }

    /// The id of the retired generation, when one exists.
    pub fn retired_id(&self) -> Option<GenerationId> {
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|g| g.id)
    }

    /// Publishes `snapshot` as the next generation and returns its id.
    /// The write lock is held only for the pointer swap; in-flight readers
    /// pinned to the previous generation are unaffected. The previous
    /// generation moves to the retired slot (displacing the one before
    /// it), so at most two generations stay reachable via the handle.
    pub fn publish(&self, snapshot: S) -> GenerationId {
        let mut current = self.current.write().unwrap_or_else(|e| e.into_inner());
        let id = GenerationId(current.id.0 + 1);
        let old = std::mem::replace(&mut *current, Arc::new(Generation { id, snapshot }));
        drop(current);
        *self.retired.lock().unwrap_or_else(|e| e.into_inner()) = Some(old);
        id
    }
}

/// A bundled frozen read path for one item set: the flat R\*-tree snapshot
/// plus its per-cell [`CellOracle`] arena, built together so they are
/// guaranteed to describe the same world. One generation of the matcher's
/// segment index is exactly one `SnapshotSet<SegmentId>`.
#[derive(Debug, Clone)]
pub struct SnapshotSet<T: Copy> {
    tree: Box<FrozenRStarTree<T>>,
    oracle: Option<CellOracle<T>>,
}

impl<T: Copy> SnapshotSet<T> {
    /// Freezes `tree` and materializes the oracle arena over it.
    ///
    /// `cell_size` and `query_radius` parameterize the oracle grid exactly
    /// as [`CellOracle::build`] does; [`OracleMode::Disabled`] skips the
    /// arena (queries walk the frozen tree instead).
    pub fn build(tree: &RStarTree<T>, cell_size: f64, query_radius: f64, mode: OracleMode) -> Self {
        let frozen = Box::new(tree.clone().freeze());
        let oracle = match mode {
            OracleMode::Precomputed { margin_m } => Some(CellOracle::build(
                &frozen,
                cell_size,
                query_radius,
                margin_m,
            )),
            OracleMode::Disabled => None,
        };
        Self {
            tree: frozen,
            oracle,
        }
    }

    /// The frozen tree snapshot.
    #[inline]
    pub fn tree(&self) -> &FrozenRStarTree<T> {
        &self.tree
    }

    /// The frozen tree, boxed (for callers that embed it).
    pub fn into_parts(self) -> (Box<FrozenRStarTree<T>>, Option<CellOracle<T>>) {
        (self.tree, self.oracle)
    }

    /// The per-cell candidate oracle, when enabled.
    #[inline]
    pub fn oracle(&self) -> Option<&CellOracle<T>> {
        self.oracle.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::Rect;

    #[test]
    fn pins_survive_publishes_and_memory_stays_bounded() {
        let handle = GenerationHandle::new("gen0");
        assert_eq!(handle.current_id(), GenerationId(0));
        assert_eq!(handle.retired_id(), None);

        let pin0 = handle.pin();
        assert_eq!(pin0.id(), GenerationId(0));
        assert_eq!(*pin0.snapshot(), "gen0");

        assert_eq!(handle.publish("gen1"), GenerationId(1));
        // the old pin still reads its world; new pins see the new one
        assert_eq!(*pin0.snapshot(), "gen0");
        let pin1 = handle.pin();
        assert_eq!(pin1.id(), GenerationId(1));
        assert_eq!(handle.retired_id(), Some(GenerationId(0)));

        assert_eq!(handle.publish("gen2"), GenerationId(2));
        // generation 0 is no longer reachable via the handle — only the
        // external pin keeps it alive now
        assert_eq!(handle.retired_id(), Some(GenerationId(1)));
        assert_eq!(handle.current_id(), GenerationId(2));
        assert_eq!(*pin0.snapshot(), "gen0");
        assert_eq!(*pin1.snapshot(), "gen1");
    }

    #[test]
    fn publish_under_concurrent_pinning_is_race_free() {
        let handle = std::sync::Arc::new(GenerationHandle::new(0usize));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&handle);
                let s = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0usize;
                    while !s.load(std::sync::atomic::Ordering::Relaxed) {
                        let pin = h.pin();
                        let seen = *pin.snapshot();
                        // generations only move forward
                        assert!(seen >= last, "generation went backwards");
                        assert_eq!(seen as u64, pin.id().0, "snapshot/id desync");
                        last = seen;
                    }
                })
            })
            .collect();
        for g in 1..=100usize {
            assert_eq!(handle.publish(g), GenerationId(g as u64));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(handle.current_id(), GenerationId(100));
    }

    #[test]
    fn snapshot_set_bundles_tree_and_oracle() {
        let items: Vec<(Rect, u32)> = (0..50)
            .map(|i| {
                let x = (i % 10) as f64 * 100.0;
                let y = (i / 10) as f64 * 100.0;
                (Rect::new(x, y, x + 40.0, y + 40.0), i)
            })
            .collect();
        let tree = RStarTree::bulk_load(items);
        let with = SnapshotSet::build(&tree, 20.0, 60.0, OracleMode::default());
        assert!(with.oracle().is_some());
        let without = SnapshotSet::build(&tree, 20.0, 60.0, OracleMode::Disabled);
        assert!(without.oracle().is_none());
        // both read paths see the same world
        let q = Rect::new(0.0, 0.0, 250.0, 250.0);
        let mut a = Vec::new();
        with.tree().for_each_in(&q, |_, &v| a.push(v));
        let mut b = Vec::new();
        without.tree().for_each_in(&q, |_, &v| b.push(v));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
