//! # semitri-episodes — the Trajectory Computation Layer
//!
//! First stage of the SeMiTri architecture (Fig. 2): raw GPS records are
//! (1) cleansed of outliers and smoothed, (2) split into raw trajectories,
//! and (3) segmented into *stop* and *move* episodes that express the
//! latent motion context the annotation layers exploit.
//!
//! * [`clean`] — speed-based outlier removal, Gaussian kernel smoothing and
//!   median filtering ("remove GPS outliers and smooth the random errors",
//!   §3.3);
//! * [`identify`] — trajectory identification: splitting an object's fix
//!   stream into application-meaningful raw trajectories on temporal gaps,
//!   spatial jumps and day boundaries (the paper's daily trajectories);
//! * [`segment`] — stop/move segmentation with pluggable computing
//!   policies (velocity threshold, spatial density) as listed in Fig. 2's
//!   "Trajectory Computing Policies" box.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clean;
pub mod identify;
pub mod segment;

pub use identify::TrajectoryIdentifier;
pub use segment::{
    CompositePolicy, DensityPolicy, Episode, EpisodeKind, EpisodeStats, SegmentationPolicy,
    VelocityPolicy,
};
