//! Trajectory identification: splitting an object's fix stream into raw
//! trajectories (the step of \[30\] the paper builds on, §3.1).

use semitri_data::{GpsRecord, RawTrajectory};

/// Policy for cutting a GPS stream into raw trajectories.
///
/// A cut is made between consecutive records when any enabled criterion
/// triggers: the temporal gap exceeds `max_time_gap_secs`, the spatial jump
/// exceeds `max_spatial_gap_m`, or (with `split_daily`) a midnight boundary
/// is crossed — the paper's experiments all use *daily* trajectories.
#[derive(Debug, Clone, Copy)]
pub struct TrajectoryIdentifier {
    /// Maximum tolerated gap between fixes in seconds.
    pub max_time_gap_secs: f64,
    /// Maximum tolerated jump between fixes in meters.
    pub max_spatial_gap_m: f64,
    /// Also split at day boundaries.
    pub split_daily: bool,
    /// Trajectories with fewer records are discarded (GPS flickers).
    pub min_records: usize,
}

impl Default for TrajectoryIdentifier {
    fn default() -> Self {
        Self {
            max_time_gap_secs: 2.0 * 3_600.0,
            max_spatial_gap_m: 5_000.0,
            split_daily: true,
            min_records: 5,
        }
    }
}

impl TrajectoryIdentifier {
    /// Splits `records` (time-ordered fixes of one object) into raw
    /// trajectories. Trajectory ids are assigned sequentially starting from
    /// `first_trajectory_id`.
    ///
    /// # Panics
    /// Panics if the records are not time-ordered.
    pub fn identify(
        &self,
        object_id: u64,
        first_trajectory_id: u64,
        records: &[GpsRecord],
    ) -> Vec<RawTrajectory> {
        assert!(
            records.windows(2).all(|w| w[1].t.0 >= w[0].t.0),
            "records must be time-ordered"
        );
        let mut out = Vec::new();
        let mut current: Vec<GpsRecord> = Vec::new();
        let mut next_id = first_trajectory_id;

        let flush = |buf: &mut Vec<GpsRecord>, next_id: &mut u64, out: &mut Vec<RawTrajectory>| {
            if buf.len() >= self.min_records {
                out.push(RawTrajectory::new(object_id, *next_id, std::mem::take(buf)));
                *next_id += 1;
            } else {
                buf.clear();
            }
        };

        for &r in records {
            if let Some(prev) = current.last() {
                let dt = r.t.since(prev.t);
                let dd = r.point.distance(prev.point);
                let day_cut = self.split_daily && r.t.day() != prev.t.day();
                if dt > self.max_time_gap_secs || dd > self.max_spatial_gap_m || day_cut {
                    flush(&mut current, &mut next_id, &mut out);
                }
            }
            current.push(r);
        }
        flush(&mut current, &mut next_id, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::{Point, Timestamp};

    fn rec(x: f64, t: f64) -> GpsRecord {
        GpsRecord::new(Point::new(x, 0.0), Timestamp(t))
    }

    fn ident() -> TrajectoryIdentifier {
        TrajectoryIdentifier {
            max_time_gap_secs: 600.0,
            max_spatial_gap_m: 1_000.0,
            split_daily: false,
            min_records: 2,
        }
    }

    #[test]
    fn continuous_stream_is_one_trajectory() {
        let recs: Vec<GpsRecord> = (0..20)
            .map(|i| rec(i as f64 * 5.0, i as f64 * 10.0))
            .collect();
        let trajs = ident().identify(1, 0, &recs);
        assert_eq!(trajs.len(), 1);
        assert_eq!(trajs[0].len(), 20);
        assert_eq!(trajs[0].object_id, 1);
        assert_eq!(trajs[0].trajectory_id, 0);
    }

    #[test]
    fn temporal_gap_splits() {
        let mut recs: Vec<GpsRecord> = (0..10).map(|i| rec(i as f64, i as f64 * 10.0)).collect();
        recs.extend((0..10).map(|i| rec(100.0 + i as f64, 5_000.0 + i as f64 * 10.0)));
        let trajs = ident().identify(1, 0, &recs);
        assert_eq!(trajs.len(), 2);
        assert_eq!(trajs[0].trajectory_id, 0);
        assert_eq!(trajs[1].trajectory_id, 1);
    }

    #[test]
    fn spatial_jump_splits() {
        let mut recs: Vec<GpsRecord> = (0..10).map(|i| rec(i as f64, i as f64)).collect();
        recs.push(rec(9_999.0, 10.0)); // huge jump, small dt
        recs.extend((1..10).map(|i| rec(9_999.0 + i as f64, 10.0 + i as f64)));
        let trajs = ident().identify(1, 0, &recs);
        assert_eq!(trajs.len(), 2);
    }

    #[test]
    fn daily_split() {
        let ident = TrajectoryIdentifier {
            split_daily: true,
            max_time_gap_secs: f64::INFINITY,
            max_spatial_gap_m: f64::INFINITY,
            min_records: 1,
        };
        let recs = vec![
            rec(0.0, 86_000.0),
            rec(1.0, 86_200.0),
            rec(2.0, 86_500.0), // next day
            rec(3.0, 86_700.0),
        ];
        let trajs = ident.identify(1, 0, &recs);
        assert_eq!(trajs.len(), 2);
        assert_eq!(trajs[0].len(), 2);
        assert_eq!(trajs[1].len(), 2);
    }

    #[test]
    fn short_fragments_discarded() {
        let ident = TrajectoryIdentifier {
            min_records: 5,
            ..self::ident()
        };
        // 3 records, gap, 6 records
        let mut recs: Vec<GpsRecord> = (0..3).map(|i| rec(i as f64, i as f64 * 10.0)).collect();
        recs.extend((0..6).map(|i| rec(i as f64, 10_000.0 + i as f64 * 10.0)));
        let trajs = ident.identify(2, 0, &recs);
        assert_eq!(trajs.len(), 1);
        assert_eq!(trajs[0].len(), 6);
        assert_eq!(trajs[0].trajectory_id, 0); // ids stay dense
    }

    #[test]
    fn empty_input() {
        assert!(ident().identify(1, 0, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_unsorted() {
        let recs = vec![rec(0.0, 10.0), rec(1.0, 5.0)];
        ident().identify(1, 0, &recs);
    }
}
