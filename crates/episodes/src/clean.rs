//! Data cleansing: outlier removal and noise smoothing.
//!
//! GPS feeds contain teleporting fixes (multipath reflections) and
//! high-frequency jitter. The Trajectory Computation Layer removes the
//! former with a physical speed bound and attenuates the latter with a
//! temporal Gaussian kernel, before any episode computation.

use semitri_data::GpsRecord;
use semitri_geo::Point;

/// Removes records that imply a physically impossible speed.
///
/// A record is an outlier when the speed from the previous *kept* record
/// exceeds `max_speed_mps`. The first record is always kept. This is the
/// standard forward-pass filter: a single teleporting fix is dropped, and
/// the track resumes from the next plausible fix.
pub fn remove_speed_outliers(records: &[GpsRecord], max_speed_mps: f64) -> Vec<GpsRecord> {
    assert!(max_speed_mps > 0.0, "speed bound must be positive");
    let mut out: Vec<GpsRecord> = Vec::with_capacity(records.len());
    for &r in records {
        match out.last() {
            None => out.push(r),
            Some(prev) => {
                let dt = r.t.since(prev.t);
                if dt <= 0.0 {
                    // duplicate timestamp: keep only if co-located
                    if prev.point.distance(r.point) < 1.0 {
                        continue;
                    }
                    // conflicting fix at same instant — drop it
                    continue;
                }
                if prev.point.distance(r.point) / dt <= max_speed_mps {
                    out.push(r);
                }
            }
        }
    }
    out
}

/// Smooths positions with a temporal Gaussian kernel of bandwidth
/// `sigma_secs`: each position becomes the weighted mean of its neighbors
/// within ±3σ in time. Timestamps are unchanged.
///
/// This is the same kernel shape the line-annotation layer uses for its
/// global score (Equation 4), applied here to positions instead of scores.
pub fn gaussian_smooth(records: &[GpsRecord], sigma_secs: f64) -> Vec<GpsRecord> {
    assert!(sigma_secs > 0.0, "sigma must be positive");
    let window = 3.0 * sigma_secs;
    let inv_two_sigma_sq = 1.0 / (2.0 * sigma_secs * sigma_secs);
    let n = records.len();
    let mut out = Vec::with_capacity(n);
    let mut lo = 0usize;
    for i in 0..n {
        let t_i = records[i].t;
        while records[lo].t.0 < t_i.0 - window {
            lo += 1;
        }
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sw = 0.0;
        for r in &records[lo..] {
            let dt = r.t.since(t_i);
            if dt > window {
                break;
            }
            let w = (-dt * dt * inv_two_sigma_sq).exp();
            sx += r.point.x * w;
            sy += r.point.y * w;
            sw += w;
        }
        out.push(GpsRecord::new(Point::new(sx / sw, sy / sw), t_i));
    }
    out
}

/// Median filter over a centered window of `2k + 1` records (per
/// coordinate). More robust than the Gaussian kernel against isolated
/// spikes; used by the taxi preprocessing where sampling is dense.
pub fn median_filter(records: &[GpsRecord], k: usize) -> Vec<GpsRecord> {
    if records.is_empty() || k == 0 {
        return records.to_vec();
    }
    let n = records.len();
    let mut out = Vec::with_capacity(n);
    let mut xs: Vec<f64> = Vec::with_capacity(2 * k + 1);
    let mut ys: Vec<f64> = Vec::with_capacity(2 * k + 1);
    for i in 0..n {
        let lo = i.saturating_sub(k);
        let hi = (i + k + 1).min(n);
        xs.clear();
        ys.clear();
        xs.extend(records[lo..hi].iter().map(|r| r.point.x));
        ys.extend(records[lo..hi].iter().map(|r| r.point.y));
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        let mid = xs.len() / 2;
        out.push(GpsRecord::new(Point::new(xs[mid], ys[mid]), records[i].t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::Timestamp;

    fn rec(x: f64, y: f64, t: f64) -> GpsRecord {
        GpsRecord::new(Point::new(x, y), Timestamp(t))
    }

    #[test]
    fn outlier_filter_drops_teleport() {
        let recs = vec![
            rec(0.0, 0.0, 0.0),
            rec(10.0, 0.0, 1.0),
            rec(5_000.0, 0.0, 2.0), // teleport
            rec(20.0, 0.0, 3.0),
            rec(30.0, 0.0, 4.0),
        ];
        let clean = remove_speed_outliers(&recs, 50.0);
        assert_eq!(clean.len(), 4);
        assert!(clean.iter().all(|r| r.point.x < 100.0));
    }

    #[test]
    fn outlier_filter_keeps_clean_track() {
        let recs: Vec<GpsRecord> = (0..50)
            .map(|i| rec(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        assert_eq!(remove_speed_outliers(&recs, 15.0).len(), 50);
    }

    #[test]
    fn outlier_filter_duplicate_timestamps() {
        let recs = vec![rec(0.0, 0.0, 0.0), rec(0.3, 0.0, 0.0), rec(500.0, 0.0, 0.0)];
        let clean = remove_speed_outliers(&recs, 50.0);
        assert_eq!(clean.len(), 1);
    }

    #[test]
    fn outlier_filter_empty() {
        assert!(remove_speed_outliers(&[], 10.0).is_empty());
    }

    #[test]
    fn gaussian_smooth_attenuates_jitter() {
        // zig-zag around y = 0: smoothed amplitude must shrink
        let recs: Vec<GpsRecord> = (0..100)
            .map(|i| rec(i as f64, if i % 2 == 0 { 5.0 } else { -5.0 }, i as f64))
            .collect();
        let sm = gaussian_smooth(&recs, 2.0);
        assert_eq!(sm.len(), 100);
        let max_amp = sm[10..90]
            .iter()
            .map(|r| r.point.y.abs())
            .fold(0.0, f64::max);
        assert!(max_amp < 1.0, "max amplitude {max_amp}");
        // timestamps preserved
        assert_eq!(sm[17].t, recs[17].t);
    }

    #[test]
    fn gaussian_smooth_preserves_straight_line() {
        let recs: Vec<GpsRecord> = (0..50)
            .map(|i| rec(i as f64 * 3.0, 7.0, i as f64))
            .collect();
        let sm = gaussian_smooth(&recs, 2.0);
        for (s, r) in sm[5..45].iter().zip(&recs[5..45]) {
            assert!((s.point.x - r.point.x).abs() < 0.5);
            assert!((s.point.y - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gaussian_smooth_single_record() {
        let recs = vec![rec(3.0, 4.0, 0.0)];
        let sm = gaussian_smooth(&recs, 1.0);
        assert_eq!(sm, recs);
    }

    #[test]
    fn median_filter_removes_spike() {
        let mut recs: Vec<GpsRecord> = (0..21).map(|i| rec(i as f64, 0.0, i as f64)).collect();
        recs[10] = rec(10.0, 900.0, 10.0); // spike in y
        let f = median_filter(&recs, 2);
        assert_eq!(f.len(), 21);
        assert_eq!(f[10].point.y, 0.0);
    }

    #[test]
    fn median_filter_identity_when_k_zero() {
        let recs = vec![rec(1.0, 2.0, 0.0), rec(3.0, 4.0, 1.0)];
        assert_eq!(median_filter(&recs, 0), recs);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn smooth_rejects_bad_sigma() {
        gaussian_smooth(&[], 0.0);
    }
}
