//! Data cleansing: outlier removal and noise smoothing.
//!
//! GPS feeds contain teleporting fixes (multipath reflections) and
//! high-frequency jitter. The Trajectory Computation Layer removes the
//! former with a physical speed bound and attenuates the latter with a
//! temporal Gaussian kernel, before any episode computation.

use semitri_data::GpsRecord;
use semitri_geo::Point;

/// Two fixes closer than this are "the same place" for duplicate
/// detection: a re-emitted fix, not a conflicting one.
pub const COLOCATED_EPS_M: f64 = 1.0;

/// What [`remove_speed_outliers_counted`] skipped, by reason. Feeds into
/// the preprocessing stage's `CleaningReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutlierCounts {
    /// Co-located duplicate fixes (same instant, < [`COLOCATED_EPS_M`]
    /// apart) collapsed onto the kept fix.
    pub deduped: u64,
    /// Conflicting fixes (same instant, far apart) dropped in favor of
    /// the first-kept fix.
    pub conflicting: u64,
    /// Fixes dropped by the physical speed bound.
    pub outliers: u64,
}

/// Removes records that imply a physically impossible speed.
///
/// A record is an outlier when the speed from the previous *kept* record
/// exceeds `max_speed_mps`. The first record is always kept. This is the
/// standard forward-pass filter: a single teleporting fix is dropped, and
/// the track resumes from the next plausible fix.
///
/// Same-instant fixes never survive alongside the kept fix: a co-located
/// duplicate (< [`COLOCATED_EPS_M`]) is *deduplicated* — the kept fix
/// already represents it — while a conflicting fix at the same instant is
/// *dropped* as untrustworthy (two receivers disagreeing about one
/// moment). The output is identical either way; the distinction is
/// observable through [`remove_speed_outliers_counted`], which reports
/// the two cases separately.
pub fn remove_speed_outliers(records: &[GpsRecord], max_speed_mps: f64) -> Vec<GpsRecord> {
    remove_speed_outliers_counted(records, max_speed_mps, &mut OutlierCounts::default())
}

/// [`remove_speed_outliers`], accumulating into `counts` how many fixes
/// were skipped and why (duplicate vs. conflict vs. speed outlier).
pub fn remove_speed_outliers_counted(
    records: &[GpsRecord],
    max_speed_mps: f64,
    counts: &mut OutlierCounts,
) -> Vec<GpsRecord> {
    assert!(max_speed_mps > 0.0, "speed bound must be positive");
    let mut out: Vec<GpsRecord> = Vec::with_capacity(records.len());
    for &r in records {
        match out.last() {
            None => out.push(r),
            Some(prev) => {
                let dt = r.t.since(prev.t);
                if dt <= 0.0 {
                    // same-instant fix: dedupe if co-located, drop the
                    // conflict otherwise — the first kept fix wins
                    if prev.point.distance(r.point) < COLOCATED_EPS_M {
                        counts.deduped += 1;
                    } else {
                        counts.conflicting += 1;
                    }
                    continue;
                }
                if prev.point.distance(r.point) / dt <= max_speed_mps {
                    out.push(r);
                } else {
                    counts.outliers += 1;
                }
            }
        }
    }
    out
}

/// Smooths positions with a temporal Gaussian kernel of bandwidth
/// `sigma_secs`: each position becomes the weighted mean of its neighbors
/// within ±3σ in time. Timestamps are unchanged.
///
/// This is the same kernel shape the line-annotation layer uses for its
/// global score (Equation 4), applied here to positions instead of scores.
///
/// # Sortedness contract
/// Records must be non-decreasing in time — the `Preprocessor` stage
/// guarantees this before any cleaning pass runs. The sliding window is
/// nevertheless *bounded* (`lo` never advances past the current record),
/// so a non-monotonic feed degrades to a possibly-miscentered window
/// that always contains record `i` — never an out-of-bounds scan, an
/// empty window, or a `0/0 = NaN` position.
pub fn gaussian_smooth(records: &[GpsRecord], sigma_secs: f64) -> Vec<GpsRecord> {
    assert!(sigma_secs > 0.0, "sigma must be positive");
    let window = 3.0 * sigma_secs;
    let inv_two_sigma_sq = 1.0 / (2.0 * sigma_secs * sigma_secs);
    let n = records.len();
    let mut out = Vec::with_capacity(n);
    let mut lo = 0usize;
    for i in 0..n {
        let t_i = records[i].t;
        while lo < i && records[lo].t.0 < t_i.0 - window {
            lo += 1;
        }
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sw = 0.0;
        for (j, r) in records.iter().enumerate().skip(lo) {
            let dt = r.t.since(t_i);
            // only trust "past the window ⇒ done" once the scan has
            // covered record i itself; on sorted input this breaks at the
            // same place the unbounded scan did
            if dt > window && j > i {
                break;
            }
            if dt.abs() > window {
                continue; // out-of-window straggler in a non-monotonic feed
            }
            let w = (-dt * dt * inv_two_sigma_sq).exp();
            sx += r.point.x * w;
            sy += r.point.y * w;
            sw += w;
        }
        // record i contributes weight 1 to its own window, so sw >= 1
        out.push(GpsRecord::new(Point::new(sx / sw, sy / sw), t_i));
    }
    out
}

/// Median filter over a centered window of `2k + 1` records (per
/// coordinate). More robust than the Gaussian kernel against isolated
/// spikes; used by the taxi preprocessing where sampling is dense.
pub fn median_filter(records: &[GpsRecord], k: usize) -> Vec<GpsRecord> {
    if records.is_empty() || k == 0 {
        return records.to_vec();
    }
    let n = records.len();
    let mut out = Vec::with_capacity(n);
    let mut xs: Vec<f64> = Vec::with_capacity(2 * k + 1);
    let mut ys: Vec<f64> = Vec::with_capacity(2 * k + 1);
    for i in 0..n {
        let lo = i.saturating_sub(k);
        let hi = (i + k + 1).min(n);
        xs.clear();
        ys.clear();
        xs.extend(records[lo..hi].iter().map(|r| r.point.x));
        ys.extend(records[lo..hi].iter().map(|r| r.point.y));
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        let mid = xs.len() / 2;
        out.push(GpsRecord::new(Point::new(xs[mid], ys[mid]), records[i].t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_geo::Timestamp;

    fn rec(x: f64, y: f64, t: f64) -> GpsRecord {
        GpsRecord::new(Point::new(x, y), Timestamp(t))
    }

    #[test]
    fn outlier_filter_drops_teleport() {
        let recs = vec![
            rec(0.0, 0.0, 0.0),
            rec(10.0, 0.0, 1.0),
            rec(5_000.0, 0.0, 2.0), // teleport
            rec(20.0, 0.0, 3.0),
            rec(30.0, 0.0, 4.0),
        ];
        let clean = remove_speed_outliers(&recs, 50.0);
        assert_eq!(clean.len(), 4);
        assert!(clean.iter().all(|r| r.point.x < 100.0));
    }

    #[test]
    fn outlier_filter_keeps_clean_track() {
        let recs: Vec<GpsRecord> = (0..50)
            .map(|i| rec(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        assert_eq!(remove_speed_outliers(&recs, 15.0).len(), 50);
    }

    #[test]
    fn outlier_filter_duplicate_timestamps() {
        let recs = vec![rec(0.0, 0.0, 0.0), rec(0.3, 0.0, 0.0), rec(500.0, 0.0, 0.0)];
        let clean = remove_speed_outliers(&recs, 50.0);
        assert_eq!(clean.len(), 1);
    }

    #[test]
    fn outlier_filter_empty() {
        assert!(remove_speed_outliers(&[], 10.0).is_empty());
    }

    #[test]
    fn outlier_filter_distinguishes_dup_conflict_and_teleport() {
        let recs = vec![
            rec(0.0, 0.0, 0.0),
            rec(0.3, 0.0, 0.0),     // co-located duplicate → deduped
            rec(500.0, 0.0, 0.0),   // conflicting same-instant fix → dropped
            rec(10.0, 0.0, 1.0),    // plausible move → kept
            rec(5_000.0, 0.0, 2.0), // teleport → speed outlier
            rec(20.0, 0.0, 3.0),    // resumes → kept
        ];
        let mut counts = OutlierCounts::default();
        let clean = remove_speed_outliers_counted(&recs, 50.0, &mut counts);
        assert_eq!(
            counts,
            OutlierCounts {
                deduped: 1,
                conflicting: 1,
                outliers: 1,
            }
        );
        // the first kept fix wins every same-instant contest
        let xs: Vec<f64> = clean.iter().map(|r| r.point.x).collect();
        assert_eq!(xs, vec![0.0, 10.0, 20.0]);
        // the counted and plain variants agree on output
        assert_eq!(clean, remove_speed_outliers(&recs, 50.0));
        assert_eq!(
            clean.len() + (counts.deduped + counts.conflicting + counts.outliers) as usize,
            recs.len()
        );
    }

    #[test]
    fn gaussian_smooth_attenuates_jitter() {
        // zig-zag around y = 0: smoothed amplitude must shrink
        let recs: Vec<GpsRecord> = (0..100)
            .map(|i| rec(i as f64, if i % 2 == 0 { 5.0 } else { -5.0 }, i as f64))
            .collect();
        let sm = gaussian_smooth(&recs, 2.0);
        assert_eq!(sm.len(), 100);
        let max_amp = sm[10..90]
            .iter()
            .map(|r| r.point.y.abs())
            .fold(0.0, f64::max);
        assert!(max_amp < 1.0, "max amplitude {max_amp}");
        // timestamps preserved
        assert_eq!(sm[17].t, recs[17].t);
    }

    #[test]
    fn gaussian_smooth_preserves_straight_line() {
        let recs: Vec<GpsRecord> = (0..50)
            .map(|i| rec(i as f64 * 3.0, 7.0, i as f64))
            .collect();
        let sm = gaussian_smooth(&recs, 2.0);
        for (s, r) in sm[5..45].iter().zip(&recs[5..45]) {
            assert!((s.point.x - r.point.x).abs() < 0.5);
            assert!((s.point.y - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gaussian_smooth_survives_non_monotonic_timestamps() {
        // regression: a backwards time jump used to leave the window
        // cursor stranded past the current record (empty window → NaN)
        let recs = vec![
            rec(0.0, 0.0, 0.0),
            rec(1.0, 0.0, 1.0),
            rec(2.0, 0.0, 100.0), // forward jump pulls lo ahead …
            rec(3.0, 0.0, 2.0),   // … then time runs backwards
            rec(4.0, 0.0, 101.0),
            rec(5.0, 0.0, 3.0),
        ];
        let sm = gaussian_smooth(&recs, 2.0);
        assert_eq!(sm.len(), recs.len());
        for (s, r) in sm.iter().zip(&recs) {
            assert!(
                s.point.x.is_finite() && s.point.y.is_finite(),
                "non-finite smoothed position for input t={}",
                r.t.0
            );
            assert_eq!(s.t, r.t);
        }
        // the degenerate 2-record case that used to produce 0/0 directly:
        // a lone fix far in the past followed by the current fix
        let sm = gaussian_smooth(&[rec(0.0, 0.0, 100.0), rec(7.0, 0.0, 0.0)], 2.0);
        assert!(sm[1].point.x.is_finite());
        assert_eq!(sm[1].point.x, 7.0);
    }

    #[test]
    fn gaussian_smooth_single_record() {
        let recs = vec![rec(3.0, 4.0, 0.0)];
        let sm = gaussian_smooth(&recs, 1.0);
        assert_eq!(sm, recs);
    }

    #[test]
    fn median_filter_removes_spike() {
        let mut recs: Vec<GpsRecord> = (0..21).map(|i| rec(i as f64, 0.0, i as f64)).collect();
        recs[10] = rec(10.0, 900.0, 10.0); // spike in y
        let f = median_filter(&recs, 2);
        assert_eq!(f.len(), 21);
        assert_eq!(f[10].point.y, 0.0);
    }

    #[test]
    fn median_filter_identity_when_k_zero() {
        let recs = vec![rec(1.0, 2.0, 0.0), rec(3.0, 4.0, 1.0)];
        assert_eq!(median_filter(&recs, 0), recs);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn smooth_rejects_bad_sigma() {
        gaussian_smooth(&[], 0.0);
    }
}
