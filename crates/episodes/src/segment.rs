//! Stop/move episode segmentation.
//!
//! An *episode* is a maximal sub-sequence of a trajectory whose
//! spatio-temporal positions comply with a predicate (paper §3.1). The
//! experiments use two-type stop/move interpretations produced by the
//! "Trajectory Computing Policies" of Fig. 2; this module implements the
//! velocity-threshold and spatial-density policies and the episode model
//! the annotation layers consume.

use semitri_data::RawTrajectory;
use semitri_geo::{Point, Rect, TimeSpan};

/// Kind of a stop/move episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpisodeKind {
    /// The object is stationary (speed below threshold / spatially dense).
    Stop,
    /// The object is moving.
    Move,
}

impl EpisodeKind {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            EpisodeKind::Stop => "stop",
            EpisodeKind::Move => "move",
        }
    }
}

/// A stop or move episode over a record index range of its parent raw
/// trajectory (no point data is copied; layers slice the parent on demand).
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// Stop or move.
    pub kind: EpisodeKind,
    /// First record index (inclusive).
    pub start: usize,
    /// Last record index (exclusive).
    pub end: usize,
    /// Entering/leaving times.
    pub span: TimeSpan,
    /// Bounding rectangle of the covered records.
    pub bbox: Rect,
    /// Mean position of the covered records (the "center" used for stop
    /// spatial joins, §4.1).
    pub center: Point,
}

impl Episode {
    /// Number of GPS records covered.
    pub fn record_count(&self) -> usize {
        self.end - self.start
    }

    /// Episode duration in seconds.
    pub fn duration(&self) -> f64 {
        self.span.duration()
    }

    fn from_range(traj: &RawTrajectory, kind: EpisodeKind, start: usize, end: usize) -> Episode {
        debug_assert!(start < end && end <= traj.len());
        let records = &traj.records()[start..end];
        let bbox = Rect::covering(records.iter().map(|r| r.point));
        let n = records.len() as f64;
        let cx = records.iter().map(|r| r.point.x).sum::<f64>() / n;
        let cy = records.iter().map(|r| r.point.y).sum::<f64>() / n;
        Episode {
            kind,
            start,
            end,
            span: TimeSpan::new(records[0].t, records[records.len() - 1].t),
            bbox,
            center: Point::new(cx, cy),
        }
    }
}

/// A stop/move computing policy: labels each record, after which maximal
/// same-label runs become episodes.
pub trait SegmentationPolicy {
    /// Returns one [`EpisodeKind`] label per record of `traj`.
    fn label(&self, traj: &RawTrajectory) -> Vec<EpisodeKind>;

    /// Segments `traj` into a partition of maximal episodes, enforcing the
    /// policy's minimum stop duration: stop runs shorter than
    /// [`SegmentationPolicy::min_stop_secs`] are relabeled as moves, then
    /// adjacent same-kind episodes are merged.
    fn segment(&self, traj: &RawTrajectory) -> Vec<Episode> {
        if traj.is_empty() {
            return Vec::new();
        }
        let mut labels = self.label(traj);
        debug_assert_eq!(labels.len(), traj.len());

        // demote too-short stop runs to moves
        let min_stop = self.min_stop_secs();
        let records = traj.records();
        let mut i = 0;
        while i < labels.len() {
            let j = run_end(&labels, i);
            if labels[i] == EpisodeKind::Stop {
                let dur = records[j - 1].t.since(records[i].t);
                if dur < min_stop {
                    labels[i..j].fill(EpisodeKind::Move);
                }
            }
            i = j;
        }

        // merge runs into episodes
        let mut out = Vec::new();
        let mut i = 0;
        while i < labels.len() {
            let j = run_end(&labels, i);
            out.push(Episode::from_range(traj, labels[i], i, j));
            i = j;
        }
        out
    }

    /// Stops shorter than this (seconds) are treated as pauses within a
    /// move (traffic lights, bus halts) and demoted.
    fn min_stop_secs(&self) -> f64;
}

fn run_end(labels: &[EpisodeKind], start: usize) -> usize {
    let mut j = start + 1;
    while j < labels.len() && labels[j] == labels[start] {
        j += 1;
    }
    j
}

/// Velocity-threshold policy: a record is part of a stop when its smoothed
/// speed falls below `speed_threshold_mps` (the paper's example predicate:
/// stop ⇔ speed < δ).
#[derive(Debug, Clone, Copy)]
pub struct VelocityPolicy {
    /// Speed threshold δ in m/s.
    pub speed_threshold_mps: f64,
    /// Half-width of the speed-smoothing window (records).
    pub smoothing_half_width: usize,
    /// Minimum duration for a stop episode in seconds.
    pub min_stop_secs: f64,
}

impl Default for VelocityPolicy {
    fn default() -> Self {
        Self {
            speed_threshold_mps: 1.0,
            smoothing_half_width: 2,
            min_stop_secs: 120.0,
        }
    }
}

impl VelocityPolicy {
    /// Tuning for vehicle feeds (dense 1 Hz sampling, cruise ≫ noise):
    /// the threshold sits above the apparent speed GPS noise induces while
    /// parked, far below driving speed.
    pub fn vehicles() -> Self {
        Self {
            speed_threshold_mps: 2.5,
            smoothing_half_width: 3,
            min_stop_secs: 120.0,
        }
    }

    /// Tuning for pedestrian/phone feeds (sparse sampling, walking at
    /// ~1.4 m/s must stay a move).
    pub fn pedestrians() -> Self {
        Self {
            speed_threshold_mps: 1.0,
            smoothing_half_width: 2,
            min_stop_secs: 180.0,
        }
    }
}

impl SegmentationPolicy for VelocityPolicy {
    fn label(&self, traj: &RawTrajectory) -> Vec<EpisodeKind> {
        let n = traj.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![EpisodeKind::Stop];
        }
        // per-record speed: mean of adjacent inter-record speeds
        let speeds = traj.speeds();
        let mut per_record = Vec::with_capacity(n);
        for i in 0..n {
            let s = match i {
                0 => speeds[0],
                _ if i == n - 1 => speeds[n - 2],
                _ => (speeds[i - 1] + speeds[i]) * 0.5,
            };
            per_record.push(s);
        }
        // moving-average smoothing
        let k = self.smoothing_half_width;
        let smoothed: Vec<f64> = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(k);
                let hi = (i + k + 1).min(n);
                per_record[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect();
        smoothed
            .iter()
            .map(|&s| {
                if s < self.speed_threshold_mps {
                    EpisodeKind::Stop
                } else {
                    EpisodeKind::Move
                }
            })
            .collect()
    }

    fn min_stop_secs(&self) -> f64 {
        self.min_stop_secs
    }
}

/// Spatial-density policy: a record belongs to a stop when the trajectory
/// stays within an `eps`-radius disc around it for at least
/// `min_duration_secs` (the "density threshold" policy of Fig. 2; robust on
/// sparse, noisy phone data where instantaneous speed is unreliable).
#[derive(Debug, Clone, Copy)]
pub struct DensityPolicy {
    /// Spatial radius ε in meters.
    pub eps_m: f64,
    /// Minimum dwell duration in seconds.
    pub min_duration_secs: f64,
}

impl Default for DensityPolicy {
    fn default() -> Self {
        Self {
            eps_m: 50.0,
            min_duration_secs: 180.0,
        }
    }
}

impl SegmentationPolicy for DensityPolicy {
    fn label(&self, traj: &RawTrajectory) -> Vec<EpisodeKind> {
        let records = traj.records();
        let n = records.len();
        let mut labels = vec![EpisodeKind::Move; n];
        let mut i = 0;
        while i < n {
            // grow the window while every point stays within eps of the
            // window's anchor
            let anchor = records[i].point;
            let mut j = i + 1;
            while j < n && records[j].point.distance(anchor) <= self.eps_m {
                j += 1;
            }
            let dur = records[j - 1].t.since(records[i].t);
            if dur >= self.min_duration_secs {
                labels[i..j].fill(EpisodeKind::Stop);
                i = j;
            } else {
                i += 1;
            }
        }
        labels
    }

    fn min_stop_secs(&self) -> f64 {
        self.min_duration_secs
    }
}

/// Convenience statistics over a segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpisodeStats {
    /// Number of stop episodes.
    pub stops: usize,
    /// Number of move episodes.
    pub moves: usize,
    /// Total records in stops.
    pub stop_records: usize,
    /// Total records in moves.
    pub move_records: usize,
}

impl EpisodeStats {
    /// Computes counts over a slice of episodes.
    pub fn of(episodes: &[Episode]) -> Self {
        let mut s = EpisodeStats::default();
        for e in episodes {
            match e.kind {
                EpisodeKind::Stop => {
                    s.stops += 1;
                    s.stop_records += e.record_count();
                }
                EpisodeKind::Move => {
                    s.moves += 1;
                    s.move_records += e.record_count();
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semitri_data::GpsRecord;
    use semitri_geo::Timestamp;

    /// Builds a trajectory that dwells at x=0 for `stop1` seconds, moves at
    /// 10 m/s for `move1` seconds, then dwells again.
    fn stop_move_stop(stop1: usize, mv: usize, stop2: usize) -> RawTrajectory {
        let mut recs = Vec::new();
        let mut t = 0.0;
        let mut x = 0.0;
        for _ in 0..stop1 {
            recs.push(GpsRecord::new(Point::new(x, 0.0), Timestamp(t)));
            t += 10.0;
        }
        for _ in 0..mv {
            x += 100.0; // 10 m/s at 10 s sampling
            recs.push(GpsRecord::new(Point::new(x, 0.0), Timestamp(t)));
            t += 10.0;
        }
        for _ in 0..stop2 {
            recs.push(GpsRecord::new(Point::new(x, 0.0), Timestamp(t)));
            t += 10.0;
        }
        RawTrajectory::new(1, 1, recs)
    }

    #[test]
    fn velocity_policy_finds_stop_move_stop() {
        let traj = stop_move_stop(30, 30, 30);
        let eps = VelocityPolicy::default().segment(&traj);
        let kinds: Vec<EpisodeKind> = eps.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EpisodeKind::Stop, EpisodeKind::Move, EpisodeKind::Stop]
        );
        // partition covers all records without overlap
        assert_eq!(eps[0].start, 0);
        assert_eq!(eps.last().unwrap().end, traj.len());
        for w in eps.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn density_policy_finds_stop_move_stop() {
        let traj = stop_move_stop(30, 30, 30);
        let eps = DensityPolicy::default().segment(&traj);
        let kinds: Vec<EpisodeKind> = eps.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EpisodeKind::Stop, EpisodeKind::Move, EpisodeKind::Stop]
        );
    }

    #[test]
    fn short_stop_is_demoted_to_move() {
        // 30 s pause at a traffic light inside a long move
        let traj = stop_move_stop(0, 20, 0);
        let mut recs = traj.records().to_vec();
        // inject a 3-sample pause
        let t0 = recs.last().unwrap().t.0;
        let x0 = recs.last().unwrap().point.x;
        for k in 0..3 {
            recs.push(GpsRecord::new(
                Point::new(x0, 0.0),
                Timestamp(t0 + 10.0 * (k + 1) as f64),
            ));
        }
        for k in 0..20 {
            recs.push(GpsRecord::new(
                Point::new(x0 + 100.0 * (k + 1) as f64, 0.0),
                Timestamp(t0 + 30.0 + 10.0 * (k + 1) as f64),
            ));
        }
        let traj = RawTrajectory::new(1, 2, recs);
        let policy = VelocityPolicy {
            min_stop_secs: 120.0,
            ..VelocityPolicy::default()
        };
        let eps = policy.segment(&traj);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].kind, EpisodeKind::Move);
    }

    #[test]
    fn pure_stop_trajectory() {
        let traj = stop_move_stop(50, 0, 0);
        let eps = VelocityPolicy::default().segment(&traj);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].kind, EpisodeKind::Stop);
        assert_eq!(eps[0].record_count(), 50);
        assert!(eps[0].bbox.area() < 1.0);
    }

    #[test]
    fn pure_move_trajectory() {
        let traj = stop_move_stop(0, 50, 0);
        let eps = VelocityPolicy::default().segment(&traj);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].kind, EpisodeKind::Move);
    }

    #[test]
    fn empty_trajectory_yields_no_episodes() {
        let traj = RawTrajectory::default();
        assert!(VelocityPolicy::default().segment(&traj).is_empty());
        assert!(DensityPolicy::default().segment(&traj).is_empty());
    }

    #[test]
    fn single_record_is_one_stop() {
        let traj = RawTrajectory::new(
            1,
            1,
            vec![GpsRecord::new(Point::new(0.0, 0.0), Timestamp(0.0))],
        );
        let eps = VelocityPolicy {
            min_stop_secs: 0.0,
            ..VelocityPolicy::default()
        }
        .segment(&traj);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].kind, EpisodeKind::Stop);
    }

    #[test]
    fn density_policy_tolerates_noise_within_eps() {
        // noisy dwell: points jitter ±20 m around the anchor
        let mut recs = Vec::new();
        for i in 0..40 {
            let dx = if i % 2 == 0 { 20.0 } else { -20.0 };
            recs.push(GpsRecord::new(
                Point::new(dx, 0.0),
                Timestamp(i as f64 * 10.0),
            ));
        }
        let traj = RawTrajectory::new(1, 1, recs);
        let eps = DensityPolicy {
            eps_m: 50.0,
            min_duration_secs: 120.0,
        }
        .segment(&traj);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].kind, EpisodeKind::Stop);
    }

    #[test]
    fn episode_geometry_fields() {
        let traj = stop_move_stop(10, 10, 0);
        let eps = VelocityPolicy {
            min_stop_secs: 0.0,
            ..VelocityPolicy::default()
        }
        .segment(&traj);
        let stop = &eps[0];
        assert!(stop.bbox.contains_point(stop.center));
        assert!(stop.duration() > 0.0);
        assert_eq!(stop.span.start, traj.records()[stop.start].t);
        assert_eq!(stop.span.end, traj.records()[stop.end - 1].t);
    }

    #[test]
    fn stats_count_episodes_and_records() {
        let traj = stop_move_stop(30, 30, 30);
        let eps = VelocityPolicy::default().segment(&traj);
        let st = EpisodeStats::of(&eps);
        assert_eq!(st.stops, 2);
        assert_eq!(st.moves, 1);
        assert_eq!(st.stop_records + st.move_records, traj.len());
    }
}

/// Conjunction of two policies: a record is a stop only when **both**
/// policies label it a stop. Fig. 2 lists several computing policies
/// (velocity, density, separations); combining a velocity threshold with a
/// spatial-density test suppresses false stops from slow-moving congestion
/// while keeping noisy-but-stationary dwells.
#[derive(Debug, Clone, Copy)]
pub struct CompositePolicy<A, B> {
    /// First policy.
    pub a: A,
    /// Second policy.
    pub b: B,
}

impl<A: SegmentationPolicy, B: SegmentationPolicy> SegmentationPolicy for CompositePolicy<A, B> {
    fn label(&self, traj: &RawTrajectory) -> Vec<EpisodeKind> {
        let la = self.a.label(traj);
        let lb = self.b.label(traj);
        la.into_iter()
            .zip(lb)
            .map(|(x, y)| {
                if x == EpisodeKind::Stop && y == EpisodeKind::Stop {
                    EpisodeKind::Stop
                } else {
                    EpisodeKind::Move
                }
            })
            .collect()
    }

    fn min_stop_secs(&self) -> f64 {
        self.a.min_stop_secs().max(self.b.min_stop_secs())
    }
}

#[cfg(test)]
mod composite_tests {
    use super::*;
    use semitri_data::GpsRecord;
    use semitri_geo::Timestamp;

    /// Slow creep: velocity says stop (0.5 m/s < 1.0) but density says
    /// move (drifts out of eps within the window).
    fn creeping() -> RawTrajectory {
        let recs = (0..100)
            .map(|i| {
                GpsRecord::new(
                    Point::new(i as f64 * 5.0, 0.0), // 0.5 m/s at 10 s dt
                    Timestamp(i as f64 * 10.0),
                )
            })
            .collect();
        RawTrajectory::new(1, 1, recs)
    }

    #[test]
    fn composite_requires_both_policies() {
        let traj = creeping();
        let velocity = VelocityPolicy {
            speed_threshold_mps: 1.0,
            smoothing_half_width: 1,
            min_stop_secs: 60.0,
        };
        let density = DensityPolicy {
            eps_m: 20.0,
            min_duration_secs: 60.0,
        };
        // velocity alone calls the creep a stop
        assert!(velocity.label(&traj).contains(&EpisodeKind::Stop));
        // density alone calls it a move
        assert!(density.label(&traj).iter().all(|&k| k == EpisodeKind::Move));
        // the conjunction follows density
        let composite = CompositePolicy {
            a: velocity,
            b: density,
        };
        let eps = composite.segment(&traj);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].kind, EpisodeKind::Move);
    }

    #[test]
    fn composite_agrees_when_both_agree() {
        // true dwell: both policies say stop
        let recs = (0..50)
            .map(|i| GpsRecord::new(Point::new(1.0, 2.0), Timestamp(i as f64 * 10.0)))
            .collect();
        let traj = RawTrajectory::new(1, 1, recs);
        let composite = CompositePolicy {
            a: VelocityPolicy::default(),
            b: DensityPolicy::default(),
        };
        let eps = composite.segment(&traj);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].kind, EpisodeKind::Stop);
    }

    #[test]
    fn composite_min_stop_is_max_of_parts() {
        let c = CompositePolicy {
            a: VelocityPolicy {
                min_stop_secs: 60.0,
                ..VelocityPolicy::default()
            },
            b: DensityPolicy {
                min_duration_secs: 240.0,
                ..DensityPolicy::default()
            },
        };
        assert_eq!(c.min_stop_secs(), 240.0);
    }
}
