//! Property-based tests: segmentation and cleaning invariants.

use proptest::prelude::*;
use semitri_data::{GpsRecord, RawTrajectory};
use semitri_episodes::clean::{gaussian_smooth, median_filter, remove_speed_outliers};
use semitri_episodes::{
    CompositePolicy, DensityPolicy, EpisodeKind, SegmentationPolicy, VelocityPolicy,
};
use semitri_geo::{Point, Timestamp};

/// Random trajectory: alternating dwell/move phases with noise.
fn trajectory_strategy() -> impl Strategy<Value = RawTrajectory> {
    (
        proptest::collection::vec((0.0..20.0f64, -5.0..5.0f64), 1..200),
        1.0..30.0f64,
    )
        .prop_map(|(deltas, dt)| {
            let mut x = 0.0;
            let mut t = 0.0;
            let recs = deltas
                .into_iter()
                .map(|(dx, noise)| {
                    x += dx;
                    t += dt;
                    GpsRecord::new(Point::new(x + noise, noise * 0.5), Timestamp(t))
                })
                .collect();
            RawTrajectory::new(1, 1, recs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn velocity_segmentation_partitions_records(traj in trajectory_strategy()) {
        let eps = VelocityPolicy::default().segment(&traj);
        // episodes cover every record exactly once, in order
        prop_assert_eq!(eps.first().map(|e| e.start), Some(0));
        prop_assert_eq!(eps.last().map(|e| e.end), Some(traj.len()));
        for w in eps.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
            // adjacent episodes differ in kind (maximality)
            prop_assert_ne!(w[0].kind, w[1].kind);
        }
        // spans and bboxes consistent with the covered records
        for e in &eps {
            let records = &traj.records()[e.start..e.end];
            prop_assert_eq!(e.span.start, records[0].t);
            prop_assert_eq!(e.span.end, records[records.len() - 1].t);
            for r in records {
                prop_assert!(e.bbox.contains_point(r.point));
            }
            prop_assert!(e.bbox.inflate(1e-9).contains_point(e.center));
        }
    }

    #[test]
    fn density_segmentation_partitions_records(traj in trajectory_strategy()) {
        let eps = DensityPolicy::default().segment(&traj);
        prop_assert_eq!(eps.first().map(|e| e.start), Some(0));
        prop_assert_eq!(eps.last().map(|e| e.end), Some(traj.len()));
        for w in eps.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn composite_stops_subset_of_each_policy(traj in trajectory_strategy()) {
        let v = VelocityPolicy::default();
        let d = DensityPolicy::default();
        let c = CompositePolicy { a: v, b: d };
        let lv = v.label(&traj);
        let ld = d.label(&traj);
        let lc = c.label(&traj);
        for i in 0..traj.len() {
            if lc[i] == EpisodeKind::Stop {
                prop_assert_eq!(lv[i], EpisodeKind::Stop);
                prop_assert_eq!(ld[i], EpisodeKind::Stop);
            }
        }
    }

    #[test]
    fn outlier_filter_output_respects_speed_bound(
        traj in trajectory_strategy(), bound in 0.5..10.0f64
    ) {
        let cleaned = remove_speed_outliers(traj.records(), bound);
        prop_assert!(cleaned.len() <= traj.len());
        for w in cleaned.windows(2) {
            let dt = w[1].t.since(w[0].t);
            prop_assert!(dt > 0.0);
            prop_assert!(w[0].point.distance(w[1].point) / dt <= bound + 1e-9);
        }
    }

    #[test]
    fn smoothing_preserves_length_and_times(traj in trajectory_strategy(), sigma in 1.0..60.0f64) {
        let sm = gaussian_smooth(traj.records(), sigma);
        prop_assert_eq!(sm.len(), traj.len());
        for (a, b) in sm.iter().zip(traj.records()) {
            prop_assert_eq!(a.t, b.t);
            prop_assert!(a.point.is_finite());
        }
    }

    #[test]
    fn median_filter_stays_within_coordinate_range(traj in trajectory_strategy(), k in 0usize..4) {
        let f = median_filter(traj.records(), k);
        prop_assert_eq!(f.len(), traj.len());
        let min_x = traj.records().iter().map(|r| r.point.x).fold(f64::INFINITY, f64::min);
        let max_x = traj.records().iter().map(|r| r.point.x).fold(f64::NEG_INFINITY, f64::max);
        for r in &f {
            prop_assert!(r.point.x >= min_x - 1e-9 && r.point.x <= max_x + 1e-9);
        }
    }
}
