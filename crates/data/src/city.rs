//! A generated city bundling every geographic source SeMiTri consumes.

use crate::landuse::LanduseGrid;
use crate::poi::PoiSet;
use crate::region::{generate_regions, NamedRegion};
use crate::road::RoadNetwork;
use semitri_geo::Rect;

/// Parameters of a generated city.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Planar extent of the city in meters.
    pub bounds: Rect,
    /// Landuse cell side (the paper's Swisstopo grid uses 100 m).
    pub landuse_cell: f64,
    /// Street-grid block size in meters.
    pub block: f64,
    /// Total POIs to generate.
    pub poi_count: usize,
    /// Number of POI clusters (density hot-spots).
    pub poi_clusters: usize,
    /// Number of free-form named regions.
    pub region_count: usize,
    /// Master seed; all sub-generators derive from it.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            bounds: Rect::new(0.0, 0.0, 10_000.0, 10_000.0),
            landuse_cell: 100.0,
            block: 250.0,
            poi_count: 4_000,
            poi_clusters: 8,
            region_count: 10,
            seed: 0xC17C17,
        }
    }
}

/// All third-party geographic sources of one deployment area: the landuse
/// grid, the road network, the POI set and the free-form named regions.
#[derive(Debug, Clone)]
pub struct City {
    /// Generation parameters.
    pub config: CityConfig,
    /// Swisstopo-style landuse cells.
    pub landuse: LanduseGrid,
    /// Routable road network.
    pub roads: RoadNetwork,
    /// Clustered POIs.
    pub pois: PoiSet,
    /// Free-form regions (campus, recreation, …).
    pub regions: Vec<NamedRegion>,
}

/// Snapshot conversion: the pipeline owns its city behind an `Arc` so
/// generation swaps can retire and replace it without lifetimes; borrowing
/// callers keep working by cloning into a fresh `Arc` at construction.
impl From<&City> for std::sync::Arc<City> {
    fn from(city: &City) -> Self {
        std::sync::Arc::new(city.clone())
    }
}

impl City {
    /// Generates a complete city from the config. Deterministic.
    pub fn generate(config: CityConfig) -> Self {
        let landuse = LanduseGrid::generate(config.bounds, config.landuse_cell, config.seed);
        let roads = RoadNetwork::generate_grid(config.bounds, config.block, config.seed);
        // POIs only open on habitable land: reject water, ice and bare rock
        let pois = PoiSet::generate_masked(
            config.bounds,
            config.poi_count,
            config.poi_clusters,
            config.seed,
            |p| {
                use crate::landuse::LanduseCategory::*;
                !matches!(
                    landuse.cell_at(p).category,
                    Lake | River | Glacier | BareLand
                )
            },
        );
        let regions = generate_regions(config.bounds, config.region_count, config.seed);
        Self {
            config,
            landuse,
            roads,
            pois,
            regions,
        }
    }

    /// City extent.
    pub fn bounds(&self) -> Rect {
        self.config.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_city_generates_all_sources() {
        let city = City::generate(CityConfig {
            bounds: Rect::new(0.0, 0.0, 4_000.0, 4_000.0),
            poi_count: 500,
            region_count: 5,
            ..CityConfig::default()
        });
        assert!(city.landuse.len() > 1_000);
        assert!(!city.roads.segments().is_empty());
        assert_eq!(city.pois.len(), 500);
        assert_eq!(city.regions.len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = CityConfig {
            bounds: Rect::new(0.0, 0.0, 3_000.0, 3_000.0),
            poi_count: 100,
            seed: 99,
            ..CityConfig::default()
        };
        let a = City::generate(cfg.clone());
        let b = City::generate(cfg);
        assert_eq!(a.pois.pois()[50], b.pois.pois()[50]);
        assert_eq!(a.roads.segments().len(), b.roads.segments().len());
        assert_eq!(
            a.landuse.category_histogram(),
            b.landuse.category_histogram()
        );
    }
}
