//! Seeded fault injection for degraded GPS feeds.
//!
//! The paper's framework claims *heterogeneous* trajectories — feeds that
//! differ wildly in sampling rate, noise and quality (§1; §5 evaluates
//! 1 Hz taxis, ~40 s fleet cars and irregular phones). Real corpora add
//! a second axis of heterogeneity the simulator's clean output lacks:
//! receiver and logger *faults*. [`FaultInjector`] reproduces that axis on
//! top of any record stream — dropout gaps, noise bursts, teleporting
//! fixes, duplicated and conflicting fixes, out-of-order and stuck
//! timestamps, non-finite coordinates and arbitrary resampling — so the
//! ingestion path can be exercised against the full degradation matrix
//! deterministically.
//!
//! Faults compose: the injector applies its fault list in order, each
//! fault drawing from its own seed-derived random stream, so adding a
//! fault never perturbs the randomness of the ones before it.

use crate::gps::GpsRecord;
use crate::sim::randn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semitri_geo::{Point, Timestamp};

/// One way a GPS feed degrades in the wild.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Loses each fix independently with probability `rate` — urban-canyon
    /// and indoor dropout gaps.
    Dropout {
        /// Per-record loss probability in `[0, 1]`.
        rate: f64,
    },
    /// Adds i.i.d. Gaussian position error of `sigma` meters to each fix
    /// independently with probability `rate` — multipath noise bursts.
    Noise {
        /// Standard deviation of the burst error in meters.
        sigma: f64,
        /// Per-record burst probability in `[0, 1]`.
        rate: f64,
    },
    /// Displaces `count` randomly chosen fixes by `distance` meters in a
    /// random direction — hard multipath reflections ("teleports").
    Teleport {
        /// Number of fixes to displace.
        count: usize,
        /// Displacement magnitude in meters.
        distance: f64,
    },
    /// Re-emits each fix in place with probability `rate` — logger
    /// retransmissions producing co-located duplicate timestamps.
    Duplicate {
        /// Per-record duplication probability in `[0, 1]`.
        rate: f64,
    },
    /// Emits a *conflicting* second fix (same timestamp, position displaced
    /// by `offset_m` meters) with probability `rate` — two receivers
    /// multiplexed onto one feed, or a buggy logger interleaving stale
    /// positions.
    Conflict {
        /// Per-record conflict probability in `[0, 1]`.
        rate: f64,
        /// How far the conflicting fix sits from the true one, meters.
        offset_m: f64,
    },
    /// Swaps adjacent records with probability `rate` — out-of-order
    /// delivery from buffered uplinks.
    OutOfOrder {
        /// Per-boundary swap probability in `[0, 1]`.
        rate: f64,
    },
    /// A stuck clock: with probability `rate` a fix repeats the previous
    /// fix's timestamp instead of its own (runs of equal timestamps under
    /// continuing movement).
    StuckClock {
        /// Per-record sticking probability in `[0, 1]`.
        rate: f64,
    },
    /// Replaces a coordinate or the timestamp with a non-finite value
    /// (NaN / ±∞) with probability `rate` — uninitialized registers and
    /// sentinel values leaking into the feed.
    NonFinite {
        /// Per-record corruption probability in `[0, 1]`.
        rate: f64,
    },
    /// Decimates the feed to at most one fix per `interval` seconds —
    /// resampling a 1 Hz feed down to the paper's ~40 s fleet rate (a
    /// no-op when the feed is already slower).
    Resample {
        /// Minimum spacing between kept fixes, seconds.
        interval: f64,
    },
}

impl Fault {
    /// Short stable key used by the [`Fault::parse_spec`] grammar.
    pub fn key(&self) -> &'static str {
        match self {
            Fault::Dropout { .. } => "dropout",
            Fault::Noise { .. } => "noise",
            Fault::Teleport { .. } => "teleport",
            Fault::Duplicate { .. } => "dup",
            Fault::Conflict { .. } => "conflict",
            Fault::OutOfOrder { .. } => "swap",
            Fault::StuckClock { .. } => "stuck",
            Fault::NonFinite { .. } => "nan",
            Fault::Resample { .. } => "resample",
        }
    }

    /// Parses a comma-separated fault spec, e.g.
    /// `"dropout=0.1,noise=25,teleport=3,dup=0.05,conflict=0.02,swap=0.05,stuck=0.03,nan=0.01,resample=5"`.
    ///
    /// Each entry is `key=value`; secondary parameters take documented
    /// defaults (`noise` bursts at rate 0.15, `teleport` displaces 2 km,
    /// `conflict` offsets 150 m). Unknown keys and unparsable values are
    /// reported, not ignored.
    pub fn parse_spec(spec: &str) -> Result<Vec<Fault>, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry {entry:?} is not key=value"))?;
            let v: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("fault {key:?} has non-numeric value {value:?}"))?;
            let rate_for = |key: &str| -> Result<f64, String> {
                if (0.0..=1.0).contains(&v) {
                    Ok(v)
                } else {
                    Err(format!("fault {key:?} rate {v} outside [0, 1]"))
                }
            };
            faults.push(match key.trim() {
                "dropout" => Fault::Dropout {
                    rate: rate_for("dropout")?,
                },
                "noise" => Fault::Noise {
                    sigma: v.abs(),
                    rate: 0.15,
                },
                "teleport" => Fault::Teleport {
                    count: v.max(0.0) as usize,
                    distance: 2_000.0,
                },
                "dup" => Fault::Duplicate {
                    rate: rate_for("dup")?,
                },
                "conflict" => Fault::Conflict {
                    rate: rate_for("conflict")?,
                    offset_m: 150.0,
                },
                "swap" => Fault::OutOfOrder {
                    rate: rate_for("swap")?,
                },
                "stuck" => Fault::StuckClock {
                    rate: rate_for("stuck")?,
                },
                "nan" => Fault::NonFinite {
                    rate: rate_for("nan")?,
                },
                "resample" => Fault::Resample { interval: v.abs() },
                other => return Err(format!("unknown fault kind {other:?}")),
            });
        }
        Ok(faults)
    }

    /// Applies this fault to `records` using `rng`.
    fn apply(&self, rng: &mut StdRng, records: Vec<GpsRecord>) -> Vec<GpsRecord> {
        match *self {
            Fault::Dropout { rate } => records
                .into_iter()
                .filter(|_| !rng.gen_bool(rate.clamp(0.0, 1.0)))
                .collect(),
            Fault::Noise { sigma, rate } => records
                .into_iter()
                .map(|mut r| {
                    if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        r.point = Point::new(
                            r.point.x + randn(rng) * sigma,
                            r.point.y + randn(rng) * sigma,
                        );
                    }
                    r
                })
                .collect(),
            Fault::Teleport { count, distance } => {
                let mut records = records;
                if records.is_empty() {
                    return records;
                }
                for _ in 0..count {
                    let i = rng.gen_range(0..records.len());
                    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                    let p = records[i].point;
                    records[i].point =
                        Point::new(p.x + distance * angle.cos(), p.y + distance * angle.sin());
                }
                records
            }
            Fault::Duplicate { rate } => {
                let mut out = Vec::with_capacity(records.len());
                for r in records {
                    out.push(r);
                    if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        out.push(r);
                    }
                }
                out
            }
            Fault::Conflict { rate, offset_m } => {
                let mut out = Vec::with_capacity(records.len());
                for r in records {
                    out.push(r);
                    if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                        out.push(GpsRecord::new(
                            Point::new(
                                r.point.x + offset_m * angle.cos(),
                                r.point.y + offset_m * angle.sin(),
                            ),
                            r.t,
                        ));
                    }
                }
                out
            }
            Fault::OutOfOrder { rate } => {
                let mut records = records;
                for i in 1..records.len() {
                    if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        records.swap(i - 1, i);
                    }
                }
                records
            }
            Fault::StuckClock { rate } => {
                let mut records = records;
                for i in 1..records.len() {
                    if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        records[i].t = records[i - 1].t;
                    }
                }
                records
            }
            Fault::NonFinite { rate } => records
                .into_iter()
                .map(|mut r| {
                    if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        match rng.gen_range(0..4u32) {
                            0 => r.point = Point::new(f64::NAN, r.point.y),
                            1 => r.point = Point::new(r.point.x, f64::INFINITY),
                            2 => r.t = Timestamp(f64::NAN),
                            _ => r.point = Point::new(f64::NEG_INFINITY, f64::NAN),
                        }
                    }
                    r
                })
                .collect(),
            Fault::Resample { interval } => {
                let mut out: Vec<GpsRecord> = Vec::new();
                for r in records {
                    match out.last() {
                        Some(prev) if r.t.since(prev.t) < interval => {}
                        _ => out.push(r),
                    }
                }
                out
            }
        }
    }
}

/// A seeded, composable corruptor of GPS record streams.
///
/// ```
/// use semitri_data::fault::{Fault, FaultInjector};
/// use semitri_data::GpsRecord;
/// use semitri_geo::{Point, Timestamp};
///
/// let feed: Vec<GpsRecord> = (0..100)
///     .map(|i| GpsRecord::new(Point::new(i as f64, 0.0), Timestamp(i as f64)))
///     .collect();
/// let injector = FaultInjector::new(42)
///     .with(Fault::Dropout { rate: 0.2 })
///     .with(Fault::StuckClock { rate: 0.1 });
/// let degraded = injector.apply(&feed);
/// assert_eq!(degraded, injector.apply(&feed)); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultInjector {
    /// Creates an injector with no faults; corrupt nothing until
    /// [`FaultInjector::with`] adds fault kinds.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builds an injector directly from a parsed spec (see
    /// [`Fault::parse_spec`]).
    pub fn from_spec(seed: u64, spec: &str) -> Result<Self, String> {
        Ok(Self {
            seed,
            faults: Fault::parse_spec(spec)?,
        })
    }

    /// Appends a fault to the composition (applied in insertion order).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The composed faults, in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Corrupts `records`, deterministically in `(seed, faults, input)`.
    pub fn apply(&self, records: &[GpsRecord]) -> Vec<GpsRecord> {
        self.apply_stream(0, records)
    }

    /// Corrupts one stream of a fleet: `stream` (e.g. the trajectory id)
    /// decorrelates the random draws between streams while keeping the
    /// whole fleet reproducible from one seed.
    pub fn apply_stream(&self, stream: u64, records: &[GpsRecord]) -> Vec<GpsRecord> {
        let mut out = records.to_vec();
        for (i, fault) in self.faults.iter().enumerate() {
            // per-fault, per-stream random stream: appending a fault never
            // re-rolls the draws of the faults before it
            let salt = (i as u64 + 1)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(stream.wrapping_mul(0xd134_2543_de82_ef95));
            let mut rng = StdRng::seed_from_u64(self.seed ^ salt);
            out = fault.apply(&mut rng, out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(n: usize) -> Vec<GpsRecord> {
        (0..n)
            .map(|i| GpsRecord::new(Point::new(i as f64 * 10.0, 0.0), Timestamp(i as f64)))
            .collect()
    }

    #[test]
    fn injector_is_deterministic_per_seed_and_stream() {
        let f = feed(200);
        let inj = FaultInjector::new(7)
            .with(Fault::Dropout { rate: 0.3 })
            .with(Fault::Noise {
                sigma: 20.0,
                rate: 0.2,
            })
            .with(Fault::OutOfOrder { rate: 0.1 });
        assert_eq!(inj.apply(&f), inj.apply(&f));
        assert_eq!(inj.apply_stream(3, &f), inj.apply_stream(3, &f));
        assert_ne!(inj.apply_stream(3, &f), inj.apply_stream(4, &f));
        let other = FaultInjector::new(8)
            .with(Fault::Dropout { rate: 0.3 })
            .with(Fault::Noise {
                sigma: 20.0,
                rate: 0.2,
            })
            .with(Fault::OutOfOrder { rate: 0.1 });
        assert_ne!(inj.apply(&f), other.apply(&f));
    }

    #[test]
    fn composition_is_prefix_stable() {
        // adding a fault must not re-roll the draws of earlier faults
        let f = feed(300);
        let base = FaultInjector::new(5).with(Fault::Dropout { rate: 0.2 });
        let extended = base.clone().with(Fault::StuckClock { rate: 0.0 });
        // rate-0 second fault: output identical to the prefix
        assert_eq!(base.apply(&f), extended.apply(&f));
    }

    #[test]
    fn dropout_removes_records() {
        let f = feed(1_000);
        let out = FaultInjector::new(1)
            .with(Fault::Dropout { rate: 0.5 })
            .apply(&f);
        assert!(out.len() < 700 && out.len() > 300, "{}", out.len());
        // dropout alone never reorders or mutates surviving fixes
        assert!(out.windows(2).all(|w| w[1].t.0 > w[0].t.0));
    }

    #[test]
    fn duplicate_and_conflict_create_equal_timestamps() {
        let f = feed(500);
        let out = FaultInjector::new(2)
            .with(Fault::Duplicate { rate: 0.2 })
            .apply(&f);
        assert!(out.len() > f.len());
        let dups = out.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(dups > 50, "{dups}");

        let out = FaultInjector::new(2)
            .with(Fault::Conflict {
                rate: 0.2,
                offset_m: 150.0,
            })
            .apply(&f);
        let conflicts = out
            .windows(2)
            .filter(|w| w[0].t == w[1].t && w[0].point.distance(w[1].point) > 1.0)
            .count();
        assert!(conflicts > 50, "{conflicts}");
    }

    #[test]
    fn out_of_order_and_stuck_clock_break_monotonicity() {
        let f = feed(500);
        let out = FaultInjector::new(3)
            .with(Fault::OutOfOrder { rate: 0.2 })
            .apply(&f);
        assert_eq!(out.len(), f.len());
        assert!(out.windows(2).any(|w| w[1].t.0 < w[0].t.0));

        let out = FaultInjector::new(3)
            .with(Fault::StuckClock { rate: 0.2 })
            .apply(&f);
        let stuck = out.windows(2).filter(|w| w[1].t.0 == w[0].t.0).count();
        assert!(stuck > 30, "{stuck}");
    }

    #[test]
    fn non_finite_poisons_some_records() {
        let f = feed(500);
        let out = FaultInjector::new(4)
            .with(Fault::NonFinite { rate: 0.1 })
            .apply(&f);
        let bad = out
            .iter()
            .filter(|r| !(r.point.x.is_finite() && r.point.y.is_finite() && r.t.0.is_finite()))
            .count();
        assert!(bad > 10, "{bad}");
    }

    #[test]
    fn teleport_displaces_exactly_requested_magnitude() {
        let f = feed(100);
        let out = FaultInjector::new(5)
            .with(Fault::Teleport {
                count: 3,
                distance: 2_000.0,
            })
            .apply(&f);
        let moved = out
            .iter()
            .zip(&f)
            .filter(|(a, b)| (a.point.distance(b.point) - 2_000.0).abs() < 1e-6)
            .count();
        // teleports can land on the same index twice; at least one moved
        assert!((1..=3).contains(&moved), "{moved}");
    }

    #[test]
    fn resample_decimates_to_requested_rate() {
        let f = feed(100); // 1 Hz
        let out = FaultInjector::new(6)
            .with(Fault::Resample { interval: 5.0 })
            .apply(&f);
        assert!(out.len() <= 21, "{}", out.len());
        assert!(out.windows(2).all(|w| w[1].t.since(w[0].t) >= 5.0));
        // already-slower feeds pass through
        let slow: Vec<GpsRecord> = (0..10)
            .map(|i| GpsRecord::new(Point::new(0.0, 0.0), Timestamp(i as f64 * 30.0)))
            .collect();
        let kept = FaultInjector::new(6)
            .with(Fault::Resample { interval: 5.0 })
            .apply(&slow);
        assert_eq!(kept, slow);
    }

    #[test]
    fn spec_parsing_round_trips_keys() {
        let faults = Fault::parse_spec(
            "dropout=0.1,noise=25,teleport=3,dup=0.05,conflict=0.02,swap=0.05,stuck=0.03,nan=0.01,resample=5",
        )
        .unwrap();
        assert_eq!(faults.len(), 9);
        let keys: Vec<&str> = faults.iter().map(|f| f.key()).collect();
        assert_eq!(
            keys,
            [
                "dropout", "noise", "teleport", "dup", "conflict", "swap", "stuck", "nan",
                "resample"
            ]
        );
        assert_eq!(faults[0], Fault::Dropout { rate: 0.1 });
        assert_eq!(faults[8], Fault::Resample { interval: 5.0 });

        assert!(Fault::parse_spec("bogus=1").is_err());
        assert!(Fault::parse_spec("dropout").is_err());
        assert!(Fault::parse_spec("dropout=x").is_err());
        assert!(Fault::parse_spec("dropout=1.5").is_err());
        assert!(Fault::parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn empty_feed_survives_every_fault() {
        let inj = FaultInjector::new(9)
            .with(Fault::Dropout { rate: 0.5 })
            .with(Fault::Teleport {
                count: 5,
                distance: 100.0,
            })
            .with(Fault::Resample { interval: 10.0 });
        assert!(inj.apply(&[]).is_empty());
    }
}
