//! GPS trip simulator with per-point ground truth.
//!
//! The original datasets (Table 1 / Table 2 of the paper) are proprietary;
//! this simulator produces their synthetic stand-ins. Movement is
//! synthesized on the road network of a generated [`crate::City`], so every
//! emitted fix knows its *true* road segment, *true* transport mode and —
//! for stops — the *true* POI and category. That ground truth is what lets
//! the benchmark harness measure matching and annotation accuracy
//! (Fig. 10 and the HMM ablations), which the paper could only do on the
//! one public benchmark (Krumm's Seattle drive).
//!
//! Realism knobs mirror the paper's data-quality discussion (§5.3):
//! Gaussian position noise, sampling-interval jitter, random fix dropout
//! while moving, and heavy indoor signal loss while dwelling.

use crate::gps::{GpsRecord, RawTrajectory};
use crate::poi::PoiCategory;
use crate::road::{RoadNetwork, SegmentId, TransportMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semitri_geo::{Point, Timestamp};

/// Ground truth attached to one emitted GPS record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthPoint {
    /// The road segment actually being traversed (`None` off-road or while
    /// dwelling).
    pub segment: Option<SegmentId>,
    /// The transport mode in effect (`None` while dwelling).
    pub mode: Option<TransportMode>,
    /// POI id of the dwell location, when dwelling at a known POI.
    pub stop_poi: Option<u64>,
    /// POI category of the dwell, when dwelling at a known POI.
    pub stop_category: Option<PoiCategory>,
}

impl TruthPoint {
    fn moving(segment: Option<SegmentId>, mode: TransportMode) -> Self {
        Self {
            segment,
            mode: Some(mode),
            stop_poi: None,
            stop_category: None,
        }
    }

    fn dwelling(poi: Option<(u64, PoiCategory)>) -> Self {
        Self {
            segment: None,
            mode: None,
            stop_poi: poi.map(|(id, _)| id),
            stop_category: poi.map(|(_, c)| c),
        }
    }

    /// `true` when the record was emitted while dwelling.
    pub fn is_stop(&self) -> bool {
        self.mode.is_none()
    }
}

/// A simulated GPS track: records plus aligned ground truth.
#[derive(Debug, Clone)]
pub struct SimulatedTrack {
    /// Moving-object id.
    pub object_id: u64,
    /// Trajectory id.
    pub trajectory_id: u64,
    /// Emitted GPS records, time-ordered.
    pub records: Vec<GpsRecord>,
    /// Ground truth, one entry per record.
    pub truth: Vec<TruthPoint>,
}

impl SimulatedTrack {
    /// Converts to a [`RawTrajectory`] (dropping the truth).
    pub fn to_raw(&self) -> RawTrajectory {
        RawTrajectory::new(self.object_id, self.trajectory_id, self.records.clone())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records were emitted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Data-quality parameters of the virtual GPS receiver.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Nominal sampling interval in seconds (1 s for the taxis, ~40 s for
    /// the Milan cars, irregular for the phones).
    pub sampling_interval: f64,
    /// Relative jitter of the sampling interval (0 = metronomic).
    pub sampling_jitter: f64,
    /// Standard deviation of the Gaussian position noise in meters.
    pub noise_sigma: f64,
    /// Probability of losing a fix while moving (urban canyons).
    pub dropout: f64,
    /// Probability of *keeping* a fix while dwelling indoors (phones lose
    /// most fixes inside buildings).
    pub indoor_keep: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            sampling_interval: 1.0,
            sampling_jitter: 0.05,
            noise_sigma: 5.0,
            dropout: 0.01,
            indoor_keep: 0.08,
        }
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
pub(crate) fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

/// Incremental builder of one simulated track.
///
/// A trip is composed leg by leg:
///
/// ```
/// use semitri_data::{City, CityConfig, TransportMode};
/// use semitri_data::sim::{SimConfig, TripSimulator};
/// use semitri_geo::{Point, Timestamp};
///
/// let city = City::generate(CityConfig::default());
/// let mut sim = TripSimulator::new(
///     &city.roads, SimConfig::default(), 42,
///     Point::new(2_000.0, 2_000.0), Timestamp(8.0 * 3600.0),
/// );
/// sim.dwell(600.0, true, None);                    // at home
/// sim.travel_to(Point::new(7_000.0, 7_000.0), TransportMode::Car);
/// sim.dwell(1_800.0, false, None);                 // parked
/// let track = sim.finish(1, 1);
/// assert!(!track.is_empty());
/// ```
pub struct TripSimulator<'a> {
    net: &'a RoadNetwork,
    cfg: SimConfig,
    rng: StdRng,
    records: Vec<GpsRecord>,
    truth: Vec<TruthPoint>,
    now: Timestamp,
    pos: Point,
    /// first-order Gauss–Markov receiver error state (see [`Self::emit`])
    noise: (f64, f64),
    noise_t: Option<f64>,
}

/// Correlation time constant of the receiver error process, seconds. Real
/// GPS error (multipath, atmospheric) drifts over tens of seconds rather
/// than re-rolling per fix; without this, 1 Hz dwells would fake
/// walking-speed movement.
const NOISE_TAU_SECS: f64 = 60.0;

impl<'a> TripSimulator<'a> {
    /// Creates a simulator starting at `pos` at time `start`.
    pub fn new(
        net: &'a RoadNetwork,
        cfg: SimConfig,
        seed: u64,
        pos: Point,
        start: Timestamp,
    ) -> Self {
        assert!(
            cfg.sampling_interval > 0.0,
            "sampling interval must be positive"
        );
        Self {
            net,
            cfg,
            rng: StdRng::seed_from_u64(seed ^ 0x7472_6970),
            records: Vec::new(),
            truth: Vec::new(),
            now: start,
            pos,
            noise: (0.0, 0.0),
            noise_t: None,
        }
    }

    /// Current simulated position.
    pub fn position(&self) -> Point {
        self.pos
    }

    /// Current simulated time.
    pub fn time(&self) -> Timestamp {
        self.now
    }

    fn next_dt(&mut self) -> f64 {
        let j = self.cfg.sampling_jitter;
        if j <= 0.0 {
            self.cfg.sampling_interval
        } else {
            self.cfg.sampling_interval * (1.0 + self.rng.gen_range(-j..j))
        }
    }

    fn emit(&mut self, true_pos: Point, truth: TruthPoint, keep_prob: f64) {
        // advance the Gauss–Markov error state to the current time:
        // n(t+dt) = ρ n(t) + σ √(1-ρ²) ε, ρ = exp(-dt/τ) — stationary with
        // marginal σ = noise_sigma and correlation time τ
        let dt = self
            .noise_t
            .map(|t| self.now.0 - t)
            .unwrap_or(f64::INFINITY);
        let rho = if dt.is_finite() {
            (-dt / NOISE_TAU_SECS).exp()
        } else {
            0.0
        };
        let innovation = self.cfg.noise_sigma * (1.0 - rho * rho).sqrt();
        self.noise.0 = rho * self.noise.0 + randn(&mut self.rng) * innovation;
        self.noise.1 = rho * self.noise.1 + randn(&mut self.rng) * innovation;
        self.noise_t = Some(self.now.0);

        if self.rng.gen_bool(keep_prob.clamp(0.0, 1.0)) {
            let noisy = Point::new(true_pos.x + self.noise.0, true_pos.y + self.noise.1);
            self.records.push(GpsRecord::new(noisy, self.now));
            self.truth.push(truth);
        }
    }

    /// Dwells at the current position for `duration` seconds. `indoor`
    /// dwells keep only [`SimConfig::indoor_keep`] of the fixes; outdoor
    /// dwells keep almost all. `poi` records the ground-truth purpose.
    pub fn dwell(&mut self, duration: f64, indoor: bool, poi: Option<(u64, PoiCategory)>) {
        assert!(duration >= 0.0, "dwell duration must be non-negative");
        let end = self.now.plus(duration);
        let keep = if indoor {
            self.cfg.indoor_keep
        } else {
            1.0 - self.cfg.dropout
        };
        let anchor = self.pos;
        // stationary multipath error is strongly time-correlated: model it
        // as an AR(1) walk around the anchor rather than i.i.d. noise, so
        // dwell fixes don't fake walking-speed movement at 1 Hz sampling
        let (mut wx, mut wy) = (0.0f64, 0.0f64);
        let innovation = self.cfg.noise_sigma * 0.3 * (1.0f64 - 0.9 * 0.9).sqrt();
        while self.now.0 < end.0 {
            wx = 0.9 * wx + randn(&mut self.rng) * innovation;
            wy = 0.9 * wy + randn(&mut self.rng) * innovation;
            let wander = Point::new(anchor.x + wx, anchor.y + wy);
            self.emit(wander, TruthPoint::dwelling(poi), keep);
            let dt = self.next_dt();
            self.now = self.now.plus(dt);
        }
        self.now = end;
    }

    /// Travels from the current position to `dest` using `mode`.
    ///
    /// Transit modes (bus, metro) are automatically bracketed by walk legs
    /// to/from the nearest access nodes, like the paper's Fig. 15 home →
    /// metro → office example. Returns `false` (emitting nothing for the
    /// failed leg) when no route exists.
    pub fn travel_to(&mut self, dest: Point, mode: TransportMode) -> bool {
        match mode {
            TransportMode::Bus | TransportMode::Metro => {
                let Some(enter) = self.net.nearest_access_node(self.pos, mode) else {
                    return false;
                };
                let Some(exit) = self.net.nearest_access_node(dest, mode) else {
                    return false;
                };
                if enter == exit {
                    // transit pointless; walk the whole way
                    return self.travel_to(dest, TransportMode::Walk);
                }
                let enter_p = self.net.node(enter);
                let exit_p = self.net.node(exit);
                if !self.travel_to(enter_p, TransportMode::Walk) {
                    return false;
                }
                let Some(route) = self.net.route(enter, exit, mode) else {
                    // no transit route; fall back to walking
                    return self.travel_to(dest, TransportMode::Walk);
                };
                self.ride_route(&route, mode);
                self.pos = exit_p;
                self.travel_to(dest, TransportMode::Walk)
            }
            TransportMode::Walk | TransportMode::Bicycle | TransportMode::Car => {
                let Some(from) = self.net.nearest_access_node(self.pos, mode) else {
                    return false;
                };
                let Some(to) = self.net.nearest_access_node(dest, mode) else {
                    return false;
                };
                let from_p = self.net.node(from);
                let to_p = self.net.node(to);
                // off-road connector to the network
                self.off_road_leg(from_p, mode);
                if from != to {
                    let Some(route) = self.net.route(from, to, mode) else {
                        return false;
                    };
                    self.ride_route(&route, mode);
                    self.pos = to_p;
                }
                // off-road connector to the destination
                self.off_road_leg(dest, mode);
                true
            }
        }
    }

    /// Straight-line movement off the network (driveway, building entrance,
    /// park lawn). Truth has `segment = None`.
    fn off_road_leg(&mut self, dest: Point, mode: TransportMode) {
        let dist = self.pos.distance(dest);
        if dist < 1.0 {
            self.pos = dest;
            return;
        }
        // off-road speed: walking pace for everyone except vehicles rolling
        // up a driveway
        let speed = match mode {
            TransportMode::Car => 5.0,
            TransportMode::Bicycle => 3.0,
            _ => TransportMode::Walk.cruise_speed(),
        };
        let start = self.pos;
        let mut traveled = 0.0;
        while traveled < dist {
            let dt = self.next_dt();
            let v = speed * (1.0 + 0.15 * randn(&mut self.rng)).max(0.2);
            traveled = (traveled + v * dt).min(dist);
            self.now = self.now.plus(dt);
            let p = start.lerp(dest, traveled / dist);
            self.emit(p, TruthPoint::moving(None, mode), 1.0 - self.cfg.dropout);
        }
        self.pos = dest;
    }

    /// Moves along a network route at mode speed with jitter; buses pause
    /// at stops, metros at stations (with degraded reception underground).
    fn ride_route(&mut self, route: &crate::road::Route, mode: TransportMode) {
        let length = route.length();
        if length == 0.0 {
            return;
        }
        let cruise = mode.cruise_speed();
        let mut d = 0.0;
        let mut since_halt = 0.0;
        // halting cadence of public transport
        let halt_gap = match mode {
            TransportMode::Bus => 350.0,
            TransportMode::Metro => 700.0,
            _ => f64::INFINITY,
        };
        let keep = match mode {
            // metro runs underground: poor reception between stations
            TransportMode::Metro => (1.0 - self.cfg.dropout) * 0.55,
            _ => 1.0 - self.cfg.dropout,
        };
        while d < length {
            let dt = self.next_dt();
            let v = cruise * (1.0 + 0.2 * randn(&mut self.rng)).clamp(0.3, 2.0);
            d = (d + v * dt).min(length);
            since_halt += v * dt;
            self.now = self.now.plus(dt);
            let p = route.polyline.point_at_distance(d).expect("route nonempty");
            let seg = route.segment_at_distance(d);
            self.emit(p, TruthPoint::moving(seg, mode), keep);

            if since_halt >= halt_gap && d < length {
                since_halt = 0.0;
                // brief halt at the stop: a few stationary samples
                let halt = self.rng.gen_range(10.0..30.0);
                let end = self.now.plus(halt);
                while self.now.0 < end.0 {
                    let dt = self.next_dt();
                    self.now = self.now.plus(dt);
                    self.emit(p, TruthPoint::moving(seg, mode), keep);
                }
            }
        }
        self.pos = route
            .polyline
            .point_at_distance(length)
            .expect("route nonempty");
    }

    /// Finalizes the track.
    pub fn finish(self, object_id: u64, trajectory_id: u64) -> SimulatedTrack {
        SimulatedTrack {
            object_id,
            trajectory_id,
            records: self.records,
            truth: self.truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{City, CityConfig};
    use semitri_geo::Rect;

    fn city() -> City {
        City::generate(CityConfig {
            bounds: Rect::new(0.0, 0.0, 5_000.0, 5_000.0),
            poi_count: 200,
            region_count: 4,
            ..CityConfig::default()
        })
    }

    fn sim(city: &City) -> TripSimulator<'_> {
        TripSimulator::new(
            &city.roads,
            SimConfig::default(),
            1234,
            Point::new(1_500.0, 1_500.0),
            Timestamp(8.0 * 3_600.0),
        )
    }

    #[test]
    fn car_trip_produces_track_with_truth() {
        let city = city();
        let mut s = sim(&city);
        assert!(s.travel_to(Point::new(4_000.0, 4_000.0), TransportMode::Car));
        let track = s.finish(1, 1);
        assert!(track.len() > 20, "got {} records", track.len());
        assert_eq!(track.records.len(), track.truth.len());
        // records time-ordered
        let raw = track.to_raw();
        assert_eq!(raw.len(), track.len());
        // most moving truth points carry a segment
        let with_seg = track.truth.iter().filter(|t| t.segment.is_some()).count();
        assert!(
            with_seg * 10 > track.len() * 5,
            "{with_seg}/{}",
            track.len()
        );
        // every declared segment is drivable
        for t in &track.truth {
            if let Some(seg) = t.segment {
                assert!(TransportMode::Car
                    .speed_on(city.roads.segment(seg))
                    .is_some());
            }
        }
    }

    #[test]
    fn dwell_indoor_is_sparse_outdoor_is_dense() {
        let city = city();
        let mut s = sim(&city);
        s.dwell(600.0, true, Some((7, PoiCategory::Feedings)));
        let indoor_count = s.records.len();
        s.dwell(600.0, false, None);
        let outdoor_count = s.records.len() - indoor_count;
        assert!(
            indoor_count * 3 < outdoor_count,
            "{indoor_count} vs {outdoor_count}"
        );
        // truth for dwell records flags a stop
        assert!(s.truth[..indoor_count].iter().all(|t| t.is_stop()));
        assert_eq!(s.truth[0].stop_category, Some(PoiCategory::Feedings));
    }

    #[test]
    fn metro_trip_brackets_with_walks() {
        let city = city();
        let mut s = sim(&city);
        let ok = s.travel_to(Point::new(4_200.0, 3_800.0), TransportMode::Metro);
        assert!(ok);
        let track = s.finish(2, 1);
        let modes: Vec<Option<TransportMode>> = track.truth.iter().map(|t| t.mode).collect();
        assert!(modes.contains(&Some(TransportMode::Walk)));
        assert!(modes.contains(&Some(TransportMode::Metro)));
        // metro samples ride only rail segments
        for t in &track.truth {
            if t.mode == Some(TransportMode::Metro) {
                if let Some(seg) = t.segment {
                    assert_eq!(city.roads.segment(seg).class, crate::road::RoadClass::Rail);
                }
            }
        }
    }

    #[test]
    fn time_advances_monotonically() {
        let city = city();
        let mut s = sim(&city);
        s.dwell(120.0, false, None);
        s.travel_to(Point::new(3_000.0, 2_500.0), TransportMode::Walk);
        let track = s.finish(3, 1);
        for w in track.records.windows(2) {
            assert!(w[1].t.0 >= w[0].t.0);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let city = city();
        let run = |seed| {
            let mut s = TripSimulator::new(
                &city.roads,
                SimConfig::default(),
                seed,
                Point::new(1_000.0, 1_200.0),
                Timestamp(0.0),
            );
            s.travel_to(Point::new(4_000.0, 4_200.0), TransportMode::Bicycle);
            s.finish(0, 0)
        };
        let a = run(5);
        let b = run(5);
        let c = run(6);
        assert_eq!(a.records, b.records);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn noise_is_bounded_in_probability() {
        let city = city();
        let mut s = sim(&city);
        s.travel_to(Point::new(3_500.0, 1_500.0), TransportMode::Car);
        let track = s.finish(4, 1);
        // with sigma = 5 m, hardly any fix should sit > 30 m from the
        // network-or-offroad true position; proxy check: consecutive fixes
        // can't jump absurdly at 1 Hz sampling
        for w in track.records.windows(2) {
            let dt = w[1].t.since(w[0].t).max(0.5);
            let v = w[0].point.distance(w[1].point) / dt;
            assert!(v < 60.0, "implied speed {v} m/s");
        }
    }

    #[test]
    fn bus_trip_emits_bus_mode_or_falls_back() {
        let city = city();
        let mut s = sim(&city);
        let ok = s.travel_to(Point::new(4_500.0, 4_500.0), TransportMode::Bus);
        assert!(ok);
        let track = s.finish(5, 1);
        assert!(!track.is_empty());
        // either a bus leg exists or everything degraded to walk (both are
        // legal outcomes depending on the bus topology near the endpoints)
        assert!(track.truth.iter().all(|t| matches!(
            t.mode,
            Some(TransportMode::Bus) | Some(TransportMode::Walk) | None
        )));
    }
}
