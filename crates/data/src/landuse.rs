//! Swisstopo-style landuse grid: the paper's semantic-region source.
//!
//! Fig. 4 of the paper lists the Swisstopo ontology: 4 top groups and 17
//! subcategories annotating 1 936 439 cells of 100 m × 100 m covering
//! Switzerland. [`LanduseGrid::generate`] produces the synthetic analogue: a
//! zoned city (urban core, residential ring, recreation pockets, farmland,
//! forest, a lake) whose category mix drives the Fig. 9 / Fig. 14
//! distributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semitri_geo::{Point, Rect};

/// The four top-level landuse groups of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LanduseGroup {
    /// L1 — settlement and urban areas.
    Settlement,
    /// L2 — agricultural areas.
    Agriculture,
    /// L3 — wooded areas.
    Wooded,
    /// L4 — unproductive areas.
    Unproductive,
}

/// The 17 landuse subcategories of Fig. 4, numbered exactly like the paper
/// (`1.1` … `4.17`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant meaning given by `label`
pub enum LanduseCategory {
    IndustrialCommercial,   // 1.1
    Building,               // 1.2
    Transportation,         // 1.3
    SpecialUrban,           // 1.4
    Recreational,           // 1.5
    Orchard,                // 2.6
    ArableLand,             // 2.7
    Meadow,                 // 2.8
    AlpineAgriculture,      // 2.9
    Forest,                 // 3.10
    BrushForest,            // 3.11
    Woods,                  // 3.12
    Lake,                   // 4.13
    River,                  // 4.14
    UnproductiveVegetation, // 4.15
    BareLand,               // 4.16
    Glacier,                // 4.17
}

impl LanduseCategory {
    /// All 17 subcategories in Fig. 4 order.
    pub const ALL: [LanduseCategory; 17] = [
        LanduseCategory::IndustrialCommercial,
        LanduseCategory::Building,
        LanduseCategory::Transportation,
        LanduseCategory::SpecialUrban,
        LanduseCategory::Recreational,
        LanduseCategory::Orchard,
        LanduseCategory::ArableLand,
        LanduseCategory::Meadow,
        LanduseCategory::AlpineAgriculture,
        LanduseCategory::Forest,
        LanduseCategory::BrushForest,
        LanduseCategory::Woods,
        LanduseCategory::Lake,
        LanduseCategory::River,
        LanduseCategory::UnproductiveVegetation,
        LanduseCategory::BareLand,
        LanduseCategory::Glacier,
    ];

    /// The paper's numeric code, e.g. `"1.2"` for building areas.
    pub fn code(&self) -> &'static str {
        match self {
            LanduseCategory::IndustrialCommercial => "1.1",
            LanduseCategory::Building => "1.2",
            LanduseCategory::Transportation => "1.3",
            LanduseCategory::SpecialUrban => "1.4",
            LanduseCategory::Recreational => "1.5",
            LanduseCategory::Orchard => "2.6",
            LanduseCategory::ArableLand => "2.7",
            LanduseCategory::Meadow => "2.8",
            LanduseCategory::AlpineAgriculture => "2.9",
            LanduseCategory::Forest => "3.10",
            LanduseCategory::BrushForest => "3.11",
            LanduseCategory::Woods => "3.12",
            LanduseCategory::Lake => "4.13",
            LanduseCategory::River => "4.14",
            LanduseCategory::UnproductiveVegetation => "4.15",
            LanduseCategory::BareLand => "4.16",
            LanduseCategory::Glacier => "4.17",
        }
    }

    /// Human-readable label from Fig. 4.
    pub fn label(&self) -> &'static str {
        match self {
            LanduseCategory::IndustrialCommercial => "industrial and commercial area",
            LanduseCategory::Building => "building areas",
            LanduseCategory::Transportation => "transportation areas",
            LanduseCategory::SpecialUrban => "special urban areas",
            LanduseCategory::Recreational => "recreational areas and cemeteries",
            LanduseCategory::Orchard => "orchard, vineyard and horticulture areas",
            LanduseCategory::ArableLand => "arable land",
            LanduseCategory::Meadow => "meadows, farm pastures",
            LanduseCategory::AlpineAgriculture => "alpine agricultural areas",
            LanduseCategory::Forest => "forest (except brush forest)",
            LanduseCategory::BrushForest => "brush forest",
            LanduseCategory::Woods => "woods",
            LanduseCategory::Lake => "lakes",
            LanduseCategory::River => "rivers",
            LanduseCategory::UnproductiveVegetation => "unproductive vegetation",
            LanduseCategory::BareLand => "bare land",
            LanduseCategory::Glacier => "glaciers, perpetual snow",
        }
    }

    /// The top-level group (L1–L4).
    pub fn group(&self) -> LanduseGroup {
        use LanduseCategory::*;
        match self {
            IndustrialCommercial | Building | Transportation | SpecialUrban | Recreational => {
                LanduseGroup::Settlement
            }
            Orchard | ArableLand | Meadow | AlpineAgriculture => LanduseGroup::Agriculture,
            Forest | BrushForest | Woods => LanduseGroup::Wooded,
            Lake | River | UnproductiveVegetation | BareLand | Glacier => {
                LanduseGroup::Unproductive
            }
        }
    }

    /// Position in [`LanduseCategory::ALL`]; stable across runs, used as a
    /// compact array key by the analytics layer.
    pub fn ordinal(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("in ALL")
    }
}

/// One landuse cell: a square extent and its category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LanduseCell {
    /// Stable cell identifier (row-major).
    pub id: u64,
    /// Square extent in local meters.
    pub rect: Rect,
    /// Landuse subcategory.
    pub category: LanduseCategory,
}

/// A regular grid of landuse cells covering a rectangular area.
#[derive(Debug, Clone)]
pub struct LanduseGrid {
    bounds: Rect,
    cell_size: f64,
    nx: usize,
    ny: usize,
    categories: Vec<LanduseCategory>, // row-major, nx * ny
}

impl LanduseGrid {
    /// Generates a zoned landuse layout over `bounds` with square cells of
    /// `cell_size` meters (the paper uses 100 m):
    ///
    /// * a lake strip along the southern edge;
    /// * an urban core in the middle (industrial/commercial + building +
    ///   transport corridors + special urban pockets);
    /// * a residential ring around the core (building + recreation);
    /// * farmland (arable/meadow/orchard) beyond the ring;
    /// * forest in the outer corners, bare land / brush scattered.
    ///
    /// The mix is randomized per cell within its zone, seeded by `seed`.
    pub fn generate(bounds: Rect, cell_size: f64, seed: u64) -> Self {
        assert!(!bounds.is_empty(), "landuse bounds must be non-empty");
        assert!(cell_size > 0.0, "cell size must be positive");
        let nx = (bounds.width() / cell_size).ceil().max(1.0) as usize;
        let ny = (bounds.height() / cell_size).ceil().max(1.0) as usize;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6c61_6e64);
        let center = bounds.center();
        let half_diag = (bounds.width().min(bounds.height())) * 0.5;
        let lake_rows = (ny as f64 * 0.08).ceil() as usize;

        let mut categories = Vec::with_capacity(nx * ny);
        for row in 0..ny {
            for col in 0..nx {
                let cx = bounds.min_x + (col as f64 + 0.5) * cell_size;
                let cy = bounds.min_y + (row as f64 + 0.5) * cell_size;
                let d = Point::new(cx, cy).distance(center) / half_diag;
                let cat = if row < lake_rows {
                    // southern lake strip with a river mouth
                    if rng.gen_bool(0.06) {
                        LanduseCategory::River
                    } else {
                        LanduseCategory::Lake
                    }
                } else if d < 0.25 {
                    // urban core
                    match rng.gen_range(0..100) {
                        0..=39 => LanduseCategory::Building,
                        40..=71 => LanduseCategory::Transportation,
                        72..=87 => LanduseCategory::IndustrialCommercial,
                        88..=93 => LanduseCategory::SpecialUrban,
                        _ => LanduseCategory::Recreational,
                    }
                } else if d < 0.55 {
                    // residential ring
                    match rng.gen_range(0..100) {
                        0..=49 => LanduseCategory::Building,
                        50..=74 => LanduseCategory::Transportation,
                        75..=86 => LanduseCategory::Recreational,
                        87..=93 => LanduseCategory::Meadow,
                        _ => LanduseCategory::Orchard,
                    }
                } else if d < 0.85 {
                    // farmland belt
                    match rng.gen_range(0..100) {
                        0..=34 => LanduseCategory::ArableLand,
                        35..=64 => LanduseCategory::Meadow,
                        65..=74 => LanduseCategory::Orchard,
                        75..=84 => LanduseCategory::Building,
                        85..=92 => LanduseCategory::Transportation,
                        _ => LanduseCategory::Woods,
                    }
                } else {
                    // outer wilds
                    match rng.gen_range(0..100) {
                        0..=44 => LanduseCategory::Forest,
                        45..=59 => LanduseCategory::BrushForest,
                        60..=69 => LanduseCategory::Woods,
                        70..=79 => LanduseCategory::AlpineAgriculture,
                        80..=88 => LanduseCategory::UnproductiveVegetation,
                        89..=95 => LanduseCategory::BareLand,
                        _ => LanduseCategory::Glacier,
                    }
                };
                categories.push(cat);
            }
        }
        Self {
            bounds,
            cell_size,
            nx,
            ny,
            categories,
        }
    }

    /// Grid bounds.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Cell side in meters.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// `true` when the grid has no cells (never happens for generated
    /// grids; kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// Cell by row-major id.
    pub fn cell(&self, id: u64) -> Option<LanduseCell> {
        let idx = id as usize;
        let cat = *self.categories.get(idx)?;
        let row = idx / self.nx;
        let col = idx % self.nx;
        let x0 = self.bounds.min_x + col as f64 * self.cell_size;
        let y0 = self.bounds.min_y + row as f64 * self.cell_size;
        Some(LanduseCell {
            id,
            rect: Rect::new(x0, y0, x0 + self.cell_size, y0 + self.cell_size),
            category: cat,
        })
    }

    /// The cell containing `p` (clamped to the border cells for points just
    /// outside the bounds, mirroring how a national grid is queried).
    pub fn cell_at(&self, p: Point) -> LanduseCell {
        let col = (((p.x - self.bounds.min_x) / self.cell_size)
            .floor()
            .max(0.0) as usize)
            .min(self.nx - 1);
        let row = (((p.y - self.bounds.min_y) / self.cell_size)
            .floor()
            .max(0.0) as usize)
            .min(self.ny - 1);
        self.cell((row * self.nx + col) as u64).expect("in range")
    }

    /// Reclassifies the cell containing `p` (clamped to the border cells
    /// like [`LanduseGrid::cell_at`]) and returns the cell id. Used by the
    /// live-update path; readers only observe the revision through the next
    /// published snapshot generation.
    pub fn set_category_at(&mut self, p: Point, category: LanduseCategory) -> u64 {
        let id = self.cell_at(p).id;
        self.categories[id as usize] = category;
        id
    }

    /// Iterates over all cells.
    pub fn cells(&self) -> impl Iterator<Item = LanduseCell> + '_ {
        (0..self.categories.len() as u64).map(move |id| self.cell(id).expect("in range"))
    }

    /// Per-category cell counts, indexed by [`LanduseCategory::ordinal`].
    pub fn category_histogram(&self) -> [usize; 17] {
        let mut h = [0usize; 17];
        for c in &self.categories {
            h[c.ordinal()] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> LanduseGrid {
        LanduseGrid::generate(Rect::new(0.0, 0.0, 5_000.0, 5_000.0), 100.0, 42)
    }

    #[test]
    fn ontology_has_17_categories_in_4_groups() {
        assert_eq!(LanduseCategory::ALL.len(), 17);
        let settlement = LanduseCategory::ALL
            .iter()
            .filter(|c| c.group() == LanduseGroup::Settlement)
            .count();
        assert_eq!(settlement, 5);
        assert_eq!(LanduseCategory::Building.code(), "1.2");
        assert_eq!(LanduseCategory::Glacier.code(), "4.17");
        assert_eq!(LanduseCategory::Transportation.ordinal(), 2);
    }

    #[test]
    fn ordinals_are_dense_and_unique() {
        let mut seen = [false; 17];
        for c in LanduseCategory::ALL {
            assert!(!seen[c.ordinal()]);
            seen[c.ordinal()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn grid_dimensions_and_count() {
        let g = small_grid();
        assert_eq!(g.len(), 50 * 50);
        assert_eq!(g.cell_size(), 100.0);
        assert!(!g.is_empty());
    }

    #[test]
    fn cell_lookup_roundtrip() {
        let g = small_grid();
        let c = g.cell_at(Point::new(2_550.0, 2_550.0));
        assert!(c.rect.contains_point(Point::new(2_550.0, 2_550.0)));
        assert_eq!(g.cell(c.id).unwrap().category, c.category);
        // out-of-bounds clamps
        let border = g.cell_at(Point::new(-10.0, 1e9));
        assert_eq!(border.id, ((50 - 1) * 50) as u64);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_grid();
        let b = small_grid();
        assert_eq!(a.category_histogram(), b.category_histogram());
        assert_eq!(
            a.cell(1234).unwrap().category,
            b.cell(1234).unwrap().category
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_grid();
        let b = LanduseGrid::generate(Rect::new(0.0, 0.0, 5_000.0, 5_000.0), 100.0, 43);
        assert_ne!(a.category_histogram(), b.category_histogram());
    }

    #[test]
    fn zoning_shape_is_plausible() {
        let g = small_grid();
        // center cell should be urban
        let center = g.cell_at(Point::new(2_500.0, 2_500.0));
        assert_eq!(center.category.group(), LanduseGroup::Settlement);
        // southern strip is lake/river
        let south = g.cell_at(Point::new(2_500.0, 50.0));
        assert_eq!(south.category.group(), LanduseGroup::Unproductive);
        // settlement group dominated by building + transportation
        let h = g.category_histogram();
        let building = h[LanduseCategory::Building.ordinal()];
        let transport = h[LanduseCategory::Transportation.ordinal()];
        assert!(building > 0 && transport > 0);
        assert!(building + transport > h[LanduseCategory::Glacier.ordinal()]);
    }

    #[test]
    fn histogram_sums_to_len() {
        let g = small_grid();
        let total: usize = g.category_histogram().iter().sum();
        assert_eq!(total, g.len());
    }

    #[test]
    fn cells_iterator_covers_all() {
        let g = LanduseGrid::generate(Rect::new(0.0, 0.0, 300.0, 200.0), 100.0, 1);
        let cells: Vec<_> = g.cells().collect();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].rect, Rect::new(0.0, 0.0, 100.0, 100.0));
        assert_eq!(cells[5].rect, Rect::new(200.0, 100.0, 300.0, 200.0));
    }
}
