//! # semitri-data — geographic sources and GPS datasets for SeMiTri
//!
//! The paper evaluates SeMiTri on proprietary GPS corpora (Swisscom Lausanne
//! taxis, GeoPKDD Milan private cars, Krumm's Seattle benchmark, the Nokia
//! Lausanne smartphone campaign) joined against third-party geographic
//! sources (Swisstopo landuse, Milan POIs, OpenStreetMap roads/regions).
//! None of those artifacts are redistributable, so this crate provides
//! faithful synthetic substitutes that exercise the same code paths *and*
//! retain ground truth, which the originals lack for everything except the
//! Seattle drive:
//!
//! * [`gps`] — raw GPS records and raw trajectories (Definition 1);
//! * [`fault`] — a seeded fault injector degrading simulator output the
//!   way real receivers and loggers do (dropout, noise, stuck clocks …);
//! * [`landuse`] — the Swisstopo-style landuse grid with the paper's
//!   17-subcategory ontology (Fig. 4);
//! * [`road`] — multi-class road networks (highway/street/path/metro/bus)
//!   with mode-restricted shortest-path routing;
//! * [`poi`] — clustered points of interest with the five Milan
//!   top-categories (Fig. 5);
//! * [`region`] — free-form named regions (campus, recreation area) in the
//!   style of the paper's OpenStreetMap examples;
//! * [`city`] — a generated city bundling all sources;
//! * [`sim`] — the trip simulator producing GPS tracks with per-point
//!   ground truth (true road segment, true transport mode, true stop
//!   category);
//! * [`presets`] — dataset presets mirroring the paper's Tables 1 and 2.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod city;
pub mod fault;
pub mod gps;
pub mod io;
pub mod landuse;
pub mod poi;
pub mod presets;
pub mod region;
pub mod road;
pub mod sim;

pub use city::{City, CityConfig};
pub use fault::{Fault, FaultInjector};
pub use gps::{FeedError, GpsFeed, GpsRecord, RawTrajectory};
pub use landuse::{LanduseCategory, LanduseCell, LanduseGrid, LanduseGroup};
pub use poi::{Poi, PoiCategory, PoiSet};
pub use region::{NamedRegion, RegionKind};
pub use road::{RoadClass, RoadNetwork, RoadSegment, TransportMode};
pub use sim::{SimulatedTrack, TruthPoint};
