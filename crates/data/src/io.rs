//! Plain-text GPS I/O: loading real datasets into SeMiTri.
//!
//! The library is evaluated on synthetic data, but a downstream user has
//! real feeds. This module reads and writes the simplest interchange
//! format GPS corpora come in — CSV lines of `lon,lat,unix_seconds` (the
//! paper's raw `(x, y, t)` triples) — projecting into the local metric
//! plane on load. No CSV crate: the grammar is three floats a line, with
//! `#` comments and blank lines skipped.

use crate::gps::GpsRecord;
use semitri_geo::{GeoPoint, LocalProjection, Point, Timestamp};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Parse errors with 1-based line numbers.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line was not `lon,lat,t`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Malformed { line, reason } => {
                write!(f, "malformed GPS CSV at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads `lon,lat,unix_seconds` records from a reader, projecting them to
/// local meters with `projection`. Records must already be time-ordered
/// (use [`crate::gps::RawTrajectory`]'s constructor or a sort downstream
/// if not guaranteed); this function does not reorder.
///
/// # Errors
/// Fails on I/O errors, non-numeric fields, wrong field counts, or
/// out-of-range coordinates.
pub fn read_gps_csv(
    reader: impl BufRead,
    projection: &LocalProjection,
) -> Result<Vec<GpsRecord>, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(',').map(str::trim);
        let mut next_f64 = |name: &str| -> Result<f64, CsvError> {
            let raw = fields.next().ok_or_else(|| CsvError::Malformed {
                line: line_no,
                reason: format!("missing {name}"),
            })?;
            raw.parse::<f64>().map_err(|_| CsvError::Malformed {
                line: line_no,
                reason: format!("{name} is not a number: {raw:?}"),
            })
        };
        let lon = next_f64("longitude")?;
        let lat = next_f64("latitude")?;
        let t = next_f64("timestamp")?;
        if fields.next().is_some() {
            return Err(CsvError::Malformed {
                line: line_no,
                reason: "more than three fields".to_string(),
            });
        }
        let g = GeoPoint::new(lon, lat);
        if !g.is_valid() {
            return Err(CsvError::Malformed {
                line: line_no,
                reason: format!("coordinates out of range: {lon},{lat}"),
            });
        }
        if !t.is_finite() {
            return Err(CsvError::Malformed {
                line: line_no,
                reason: "non-finite timestamp".to_string(),
            });
        }
        out.push(GpsRecord::new(projection.to_local(g), Timestamp(t)));
    }
    Ok(out)
}

/// Writes records as `lon,lat,unix_seconds` lines (inverse projection).
///
/// # Errors
/// Fails on I/O errors.
pub fn write_gps_csv(
    mut writer: impl Write,
    projection: &LocalProjection,
    records: &[GpsRecord],
) -> io::Result<()> {
    writeln!(writer, "# lon,lat,unix_seconds")?;
    for r in records {
        let g = projection.to_geo(Point::new(r.point.x, r.point.y));
        writeln!(writer, "{:.7},{:.7},{:.3}", g.lon, g.lat, r.t.0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn projection() -> LocalProjection {
        LocalProjection::new(GeoPoint::new(6.6323, 46.5197))
    }

    #[test]
    fn roundtrip_preserves_records() {
        let proj = projection();
        let records: Vec<GpsRecord> = (0..50)
            .map(|i| {
                GpsRecord::new(
                    Point::new(i as f64 * 13.5, -(i as f64) * 7.25),
                    Timestamp(1_000.0 + i as f64),
                )
            })
            .collect();
        let mut buf = Vec::new();
        write_gps_csv(&mut buf, &proj, &records).unwrap();
        let parsed = read_gps_csv(buf.as_slice(), &proj).unwrap();
        assert_eq!(parsed.len(), records.len());
        for (a, b) in parsed.iter().zip(&records) {
            assert!(a.point.distance(b.point) < 0.01, "{a:?} vs {b:?}");
            assert!((a.t.0 - b.t.0).abs() < 1e-3);
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let csv = "# header\n\n6.6323, 46.5197, 100\n   \n6.6330,46.5200,110\n";
        let parsed = read_gps_csv(csv.as_bytes(), &projection()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed[0].point.norm() < 1.0); // the origin point
    }

    #[test]
    fn malformed_lines_reported_with_position() {
        let proj = projection();
        let err = read_gps_csv("6.6,46.5,1\nnot-a-number,46.5,2\n".as_bytes(), &proj).unwrap_err();
        match err {
            CsvError::Malformed { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("longitude"));
            }
            other => panic!("unexpected {other:?}"),
        }

        let err = read_gps_csv("6.6,46.5\n".as_bytes(), &proj).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 1, .. }));

        let err = read_gps_csv("6.6,46.5,1,9\n".as_bytes(), &proj).unwrap_err();
        assert!(err.to_string().contains("three fields"));

        let err = read_gps_csv("200.0,46.5,1\n".as_bytes(), &proj).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(read_gps_csv("".as_bytes(), &projection())
            .unwrap()
            .is_empty());
    }
}
