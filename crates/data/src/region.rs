//! Free-form named regions — the paper's OpenStreetMap-style semantic
//! regions (EPFL campus, a recreation facility with a swimming pool, §4.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semitri_geo::{Point, Polygon, Rect};

/// Kinds of free-form regions the generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// A university/company campus.
    Campus,
    /// A park or recreation facility.
    Recreation,
    /// A shopping/market district.
    Market,
    /// A residential neighbourhood.
    Residential,
}

impl RegionKind {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            RegionKind::Campus => "campus",
            RegionKind::Recreation => "recreation",
            RegionKind::Market => "market",
            RegionKind::Residential => "residential",
        }
    }
}

/// A named free-form region with polygonal extent.
#[derive(Debug, Clone)]
pub struct NamedRegion {
    /// Stable identifier.
    pub id: u64,
    /// Display name ("EPFL campus").
    pub name: String,
    /// Kind of place.
    pub kind: RegionKind,
    /// Polygonal extent.
    pub polygon: Polygon,
}

impl NamedRegion {
    /// Bounding rectangle of the extent.
    pub fn bbox(&self) -> Rect {
        self.polygon.bbox()
    }
}

/// Generates a handful of named regions scattered over the city: one
/// campus, a few recreation areas, markets and residential quarters.
/// Deterministic given `seed`.
pub fn generate_regions(bounds: Rect, count: usize, seed: u64) -> Vec<NamedRegion> {
    assert!(!bounds.is_empty(), "region bounds must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7265_6769);
    let mut out = Vec::with_capacity(count);
    for id in 0..count {
        let kind = match id {
            0 => RegionKind::Campus,
            _ => match rng.gen_range(0..3) {
                0 => RegionKind::Recreation,
                1 => RegionKind::Market,
                _ => RegionKind::Residential,
            },
        };
        let radius = match kind {
            RegionKind::Campus => bounds.width() * 0.05,
            RegionKind::Recreation => bounds.width() * rng.gen_range(0.015..0.035),
            RegionKind::Market => bounds.width() * rng.gen_range(0.01..0.02),
            RegionKind::Residential => bounds.width() * rng.gen_range(0.03..0.05),
        };
        let cx = bounds.min_x + bounds.width() * rng.gen_range(0.15..0.85);
        let cy = bounds.min_y + bounds.height() * rng.gen_range(0.2..0.85);
        // irregular convex-ish blob: regular polygon with radial jitter
        let n = rng.gen_range(6..12);
        let ring: Vec<Point> = (0..n)
            .map(|k| {
                let theta = std::f64::consts::TAU * (k as f64) / (n as f64);
                let r = radius * rng.gen_range(0.75..1.25);
                Point::new(cx + r * theta.cos(), cy + r * theta.sin())
            })
            .collect();
        let name = match kind {
            RegionKind::Campus => "EPFL-like campus".to_string(),
            RegionKind::Recreation => format!("recreation area {id}"),
            RegionKind::Market => format!("market district {id}"),
            RegionKind::Residential => format!("residential quarter {id}"),
        };
        out.push(NamedRegion {
            id: id as u64,
            name,
            kind,
            polygon: Polygon::new(ring),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions() -> Vec<NamedRegion> {
        generate_regions(Rect::new(0.0, 0.0, 10_000.0, 10_000.0), 12, 3)
    }

    #[test]
    fn generates_requested_count() {
        assert_eq!(regions().len(), 12);
    }

    #[test]
    fn first_region_is_campus() {
        let r = regions();
        assert_eq!(r[0].kind, RegionKind::Campus);
        assert!(r[0].name.contains("campus"));
    }

    #[test]
    fn polygons_are_valid_and_inside_ish() {
        let outer = Rect::new(0.0, 0.0, 10_000.0, 10_000.0).inflate(1_000.0);
        for r in regions() {
            assert!(r.polygon.area() > 0.0);
            assert!(outer.contains_rect(&r.bbox()));
            // centroid inside its own polygon (blobs are near-convex)
            assert!(r.polygon.contains_point(r.polygon.centroid()));
        }
    }

    #[test]
    fn deterministic() {
        let a = regions();
        let b = regions();
        assert_eq!(a[5].polygon.ring(), b[5].polygon.ring());
        assert_eq!(a[5].name, b[5].name);
    }

    #[test]
    fn ids_are_sequential() {
        for (i, r) in regions().iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }
}
