//! Raw GPS records and raw trajectories (paper Definition 1).

use semitri_geo::{Point, Rect, TimeSpan, Timestamp};

/// One GPS fix: the paper's `(x, y, t)` triple, already projected to local
/// meters (datasets in lon/lat are projected by
/// [`semitri_geo::LocalProjection`] at load time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsRecord {
    /// Position in local meters.
    pub point: Point,
    /// Fix time.
    pub t: Timestamp,
}

impl GpsRecord {
    /// Creates a record.
    #[inline]
    pub const fn new(point: Point, t: Timestamp) -> Self {
        Self { point, t }
    }

    /// Instantaneous speed from `self` to `next` in m/s; `0.0` when the
    /// records share a timestamp (degenerate fix pairs do occur in real
    /// feeds and must not produce infinities downstream).
    #[inline]
    pub fn speed_to(&self, next: &GpsRecord) -> f64 {
        let dt = next.t.since(self.t);
        if dt <= 0.0 {
            0.0
        } else {
            self.point.distance(next.point) / dt
        }
    }
}

/// A raw trajectory `T = {Q1, …, Qm}` — Definition 1: a finite,
/// time-ordered sequence of GPS records belonging to one moving object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RawTrajectory {
    /// Identifier of the moving object (taxi, car, phone user).
    pub object_id: u64,
    /// Identifier of this trajectory within the dataset.
    pub trajectory_id: u64,
    records: Vec<GpsRecord>,
}

impl RawTrajectory {
    /// Creates a trajectory from time-ordered records.
    ///
    /// # Panics
    /// Panics if the records are not non-decreasing in time — trajectory
    /// identification upstream must have sorted the feed.
    pub fn new(object_id: u64, trajectory_id: u64, records: Vec<GpsRecord>) -> Self {
        assert!(
            records.windows(2).all(|w| w[1].t.0 >= w[0].t.0),
            "raw trajectory records must be time-ordered"
        );
        Self {
            object_id,
            trajectory_id,
            records,
        }
    }

    /// The records.
    #[inline]
    pub fn records(&self) -> &[GpsRecord] {
        &self.records
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trajectory has no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Time span from the first to the last record; `None` when empty.
    pub fn time_span(&self) -> Option<TimeSpan> {
        Some(TimeSpan::new(
            self.records.first()?.t,
            self.records.last()?.t,
        ))
    }

    /// Bounding rectangle of all fixes.
    pub fn bbox(&self) -> Rect {
        Rect::covering(self.records.iter().map(|r| r.point))
    }

    /// Total path length in meters (sum of consecutive fix distances).
    pub fn path_length(&self) -> f64 {
        self.records
            .windows(2)
            .map(|w| w[0].point.distance(w[1].point))
            .sum()
    }

    /// Average sampling interval in seconds; `None` with fewer than two
    /// records.
    pub fn mean_sampling_interval(&self) -> Option<f64> {
        if self.records.len() < 2 {
            return None;
        }
        let span = self.time_span()?.duration();
        Some(span / (self.records.len() - 1) as f64)
    }

    /// Speed sequence between consecutive fixes (length `len - 1`).
    pub fn speeds(&self) -> Vec<f64> {
        self.records
            .windows(2)
            .map(|w| w[0].speed_to(&w[1]))
            .collect()
    }

    /// A sub-trajectory view over record indexes `[start, end)`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> &[GpsRecord] {
        &self.records[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(x: f64, y: f64, t: f64) -> GpsRecord {
        GpsRecord::new(Point::new(x, y), Timestamp(t))
    }

    #[test]
    fn speed_between_records() {
        let a = rec(0.0, 0.0, 0.0);
        let b = rec(30.0, 40.0, 10.0);
        assert_eq!(a.speed_to(&b), 5.0);
    }

    #[test]
    fn speed_zero_dt_is_zero() {
        let a = rec(0.0, 0.0, 5.0);
        let b = rec(100.0, 0.0, 5.0);
        assert_eq!(a.speed_to(&b), 0.0);
    }

    #[test]
    fn trajectory_stats() {
        let t = RawTrajectory::new(
            1,
            7,
            vec![rec(0.0, 0.0, 0.0), rec(3.0, 4.0, 5.0), rec(3.0, 10.0, 10.0)],
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.path_length(), 11.0);
        assert_eq!(t.time_span().unwrap().duration(), 10.0);
        assert_eq!(t.mean_sampling_interval(), Some(5.0));
        assert_eq!(t.speeds(), vec![1.0, 1.2]);
        assert_eq!(t.bbox(), Rect::new(0.0, 0.0, 3.0, 10.0));
    }

    #[test]
    fn empty_trajectory() {
        let t = RawTrajectory::default();
        assert!(t.is_empty());
        assert_eq!(t.time_span(), None);
        assert_eq!(t.mean_sampling_interval(), None);
        assert!(t.bbox().is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_unsorted_records() {
        RawTrajectory::new(1, 1, vec![rec(0.0, 0.0, 10.0), rec(1.0, 0.0, 5.0)]);
    }

    #[test]
    fn slice_returns_window() {
        let t = RawTrajectory::new(
            1,
            1,
            vec![rec(0.0, 0.0, 0.0), rec(1.0, 0.0, 1.0), rec(2.0, 0.0, 2.0)],
        );
        assert_eq!(t.slice(1, 3).len(), 2);
    }
}
