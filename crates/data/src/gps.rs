//! Raw GPS records and raw trajectories (paper Definition 1).

use semitri_geo::{Point, Rect, TimeSpan, Timestamp};

/// One GPS fix: the paper's `(x, y, t)` triple, already projected to local
/// meters (datasets in lon/lat are projected by
/// [`semitri_geo::LocalProjection`] at load time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsRecord {
    /// Position in local meters.
    pub point: Point,
    /// Fix time.
    pub t: Timestamp,
}

impl GpsRecord {
    /// Creates a record.
    #[inline]
    pub const fn new(point: Point, t: Timestamp) -> Self {
        Self { point, t }
    }

    /// `true` when both coordinates and the timestamp are finite. Real
    /// feeds leak NaN/∞ sentinels from uninitialized receiver registers;
    /// every ingestion path must reject such fixes before geometry runs
    /// on them.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.point.x.is_finite() && self.point.y.is_finite() && self.t.0.is_finite()
    }

    /// Instantaneous speed from `self` to `next` in m/s; `0.0` when the
    /// records share a timestamp (degenerate fix pairs do occur in real
    /// feeds and must not produce infinities downstream).
    #[inline]
    pub fn speed_to(&self, next: &GpsRecord) -> f64 {
        let dt = next.t.since(self.t);
        if dt <= 0.0 {
            0.0
        } else {
            self.point.distance(next.point) / dt
        }
    }
}

/// Why a feed could not be turned into a usable [`RawTrajectory`].
///
/// This is the *recoverable* counterpart to the panicking
/// [`RawTrajectory::new`] contract: ingestion paths facing untrusted
/// feeds use [`RawTrajectory::from_unsorted`] (or the pipeline's
/// `try_annotate_feed`) and surface this error instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedError {
    /// Every fix in a non-empty feed was non-finite — nothing is left to
    /// annotate and no time span can even be established.
    NoValidRecords {
        /// How many (all invalid) fixes the feed contained.
        total: usize,
    },
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::NoValidRecords { total } => {
                write!(
                    f,
                    "feed has no valid records ({total} fixes, all non-finite)"
                )
            }
        }
    }
}

impl std::error::Error for FeedError {}

/// An untrusted GPS feed: identified records straight off a receiver or
/// logger, with **no ordering or finiteness guarantees**. The pipeline's
/// preprocessing stage turns feeds into clean [`RawTrajectory`]s,
/// reporting what it had to repair.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GpsFeed {
    /// Identifier of the moving object (taxi, car, phone user).
    pub object_id: u64,
    /// Identifier of this trajectory within the dataset.
    pub trajectory_id: u64,
    /// The fixes, in arrival order — possibly out of order, duplicated
    /// or non-finite.
    pub records: Vec<GpsRecord>,
}

impl GpsFeed {
    /// Creates a feed.
    pub fn new(object_id: u64, trajectory_id: u64, records: Vec<GpsRecord>) -> Self {
        Self {
            object_id,
            trajectory_id,
            records,
        }
    }
}

/// A raw trajectory `T = {Q1, …, Qm}` — Definition 1: a finite,
/// time-ordered sequence of GPS records belonging to one moving object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RawTrajectory {
    /// Identifier of the moving object (taxi, car, phone user).
    pub object_id: u64,
    /// Identifier of this trajectory within the dataset.
    pub trajectory_id: u64,
    records: Vec<GpsRecord>,
}

impl RawTrajectory {
    /// Creates a trajectory from time-ordered records.
    ///
    /// # Panics
    /// Panics if the records are not non-decreasing in time — trajectory
    /// identification upstream must have sorted the feed.
    pub fn new(object_id: u64, trajectory_id: u64, records: Vec<GpsRecord>) -> Self {
        assert!(
            records.windows(2).all(|w| w[1].t.0 >= w[0].t.0),
            "raw trajectory records must be time-ordered"
        );
        Self {
            object_id,
            trajectory_id,
            records,
        }
    }

    /// Creates a trajectory from an untrusted feed: drops non-finite
    /// fixes and stably sorts by timestamp (equal-timestamp fixes keep
    /// their arrival order, so downstream dedup sees the first-arrived
    /// fix first).
    ///
    /// Returns [`FeedError::NoValidRecords`] when a non-empty feed has
    /// *no* finite fix at all; an empty feed yields an empty trajectory
    /// (vacuously ordered, annotates to nothing).
    pub fn from_unsorted(
        object_id: u64,
        trajectory_id: u64,
        records: Vec<GpsRecord>,
    ) -> Result<Self, FeedError> {
        let total = records.len();
        let mut valid: Vec<GpsRecord> = records.into_iter().filter(GpsRecord::is_finite).collect();
        if valid.is_empty() && total > 0 {
            return Err(FeedError::NoValidRecords { total });
        }
        // all timestamps are finite here, so the comparison is total
        valid.sort_by(|a, b| a.t.0.partial_cmp(&b.t.0).expect("finite timestamps"));
        Ok(Self {
            object_id,
            trajectory_id,
            records: valid,
        })
    }

    /// The records.
    #[inline]
    pub fn records(&self) -> &[GpsRecord] {
        &self.records
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trajectory has no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Time span from the first to the last record; `None` when empty.
    pub fn time_span(&self) -> Option<TimeSpan> {
        Some(TimeSpan::new(
            self.records.first()?.t,
            self.records.last()?.t,
        ))
    }

    /// Bounding rectangle of all fixes.
    pub fn bbox(&self) -> Rect {
        Rect::covering(self.records.iter().map(|r| r.point))
    }

    /// Total path length in meters (sum of consecutive fix distances).
    pub fn path_length(&self) -> f64 {
        self.records
            .windows(2)
            .map(|w| w[0].point.distance(w[1].point))
            .sum()
    }

    /// Average sampling interval in seconds; `None` with fewer than two
    /// records.
    pub fn mean_sampling_interval(&self) -> Option<f64> {
        if self.records.len() < 2 {
            return None;
        }
        let span = self.time_span()?.duration();
        Some(span / (self.records.len() - 1) as f64)
    }

    /// Speed sequence between consecutive fixes (length `len - 1`).
    pub fn speeds(&self) -> Vec<f64> {
        self.records
            .windows(2)
            .map(|w| w[0].speed_to(&w[1]))
            .collect()
    }

    /// A sub-trajectory view over record indexes `[start, end)`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> &[GpsRecord] {
        &self.records[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(x: f64, y: f64, t: f64) -> GpsRecord {
        GpsRecord::new(Point::new(x, y), Timestamp(t))
    }

    #[test]
    fn speed_between_records() {
        let a = rec(0.0, 0.0, 0.0);
        let b = rec(30.0, 40.0, 10.0);
        assert_eq!(a.speed_to(&b), 5.0);
    }

    #[test]
    fn speed_zero_dt_is_zero() {
        let a = rec(0.0, 0.0, 5.0);
        let b = rec(100.0, 0.0, 5.0);
        assert_eq!(a.speed_to(&b), 0.0);
    }

    #[test]
    fn trajectory_stats() {
        let t = RawTrajectory::new(
            1,
            7,
            vec![rec(0.0, 0.0, 0.0), rec(3.0, 4.0, 5.0), rec(3.0, 10.0, 10.0)],
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.path_length(), 11.0);
        assert_eq!(t.time_span().unwrap().duration(), 10.0);
        assert_eq!(t.mean_sampling_interval(), Some(5.0));
        assert_eq!(t.speeds(), vec![1.0, 1.2]);
        assert_eq!(t.bbox(), Rect::new(0.0, 0.0, 3.0, 10.0));
    }

    #[test]
    fn empty_trajectory() {
        let t = RawTrajectory::default();
        assert!(t.is_empty());
        assert_eq!(t.time_span(), None);
        assert_eq!(t.mean_sampling_interval(), None);
        assert!(t.bbox().is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_unsorted_records() {
        RawTrajectory::new(1, 1, vec![rec(0.0, 0.0, 10.0), rec(1.0, 0.0, 5.0)]);
    }

    #[test]
    fn from_unsorted_sorts_and_drops_nonfinite() {
        let t = RawTrajectory::from_unsorted(
            1,
            2,
            vec![
                rec(0.0, 0.0, 10.0),
                rec(f64::NAN, 0.0, 11.0),
                rec(1.0, 0.0, 5.0),
                GpsRecord::new(Point::new(2.0, 0.0), Timestamp(f64::INFINITY)),
                rec(3.0, 0.0, 7.0),
            ],
        )
        .unwrap();
        assert_eq!(t.object_id, 1);
        assert_eq!(t.trajectory_id, 2);
        let ts: Vec<f64> = t.records().iter().map(|r| r.t.0).collect();
        assert_eq!(ts, vec![5.0, 7.0, 10.0]);
    }

    #[test]
    fn from_unsorted_is_stable_on_equal_timestamps() {
        let t = RawTrajectory::from_unsorted(
            1,
            1,
            vec![rec(9.0, 0.0, 8.0), rec(1.0, 0.0, 3.0), rec(2.0, 0.0, 3.0)],
        )
        .unwrap();
        let xs: Vec<f64> = t.records().iter().map(|r| r.point.x).collect();
        // the two t=3 fixes keep arrival order
        assert_eq!(xs, vec![1.0, 2.0, 9.0]);
    }

    #[test]
    fn from_unsorted_rejects_all_invalid_feed() {
        let err = RawTrajectory::from_unsorted(1, 1, vec![rec(f64::NAN, 0.0, 0.0)]).unwrap_err();
        assert_eq!(err, FeedError::NoValidRecords { total: 1 });
        assert!(err.to_string().contains("no valid records"));
        // empty feeds are fine: nothing to annotate, nothing invalid
        assert!(RawTrajectory::from_unsorted(1, 1, vec![])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn record_finiteness() {
        assert!(rec(0.0, 0.0, 0.0).is_finite());
        assert!(!rec(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!rec(0.0, f64::NEG_INFINITY, 0.0).is_finite());
        assert!(!rec(0.0, 0.0, f64::NAN).is_finite());
    }

    #[test]
    fn slice_returns_window() {
        let t = RawTrajectory::new(
            1,
            1,
            vec![rec(0.0, 0.0, 0.0), rec(1.0, 0.0, 1.0), rec(2.0, 0.0, 2.0)],
        );
        assert_eq!(t.slice(1, 3).len(), 2);
    }
}
