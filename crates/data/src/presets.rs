//! Dataset presets mirroring the paper's Tables 1 and 2.
//!
//! Each preset generates a [`City`] plus a set of daily GPS tracks with
//! ground truth. Sizes are scaled down from the paper's multi-month corpora
//! by the `days` / `n_*` parameters so the default experiments run on a
//! laptop; the benchmark harness passes larger values when sweeping.
//!
//! | preset | paper dataset | sampling | character |
//! |---|---|---|---|
//! | [`lausanne_taxis`] | Swisscom taxis (3.06 M pts, 5 months) | 1 s | continuous urban driving, short passenger stops |
//! | [`milan_cars`] | GeoPKDD private cars (2.07 M pts, 17 241 cars) | ~40 s | few trips/day ending at shopping/leisure POIs |
//! | [`seattle_drive`] | Krumm map-matching benchmark (7 531 pts) | 1 s | one long drive with ground-truth path |
//! | [`smartphone_users`] | Nokia campaign (7.3 M pts, 185 users) | ~10 s, gappy | multi-modal daily life, indoor losses |

use crate::city::{City, CityConfig};
use crate::poi::{Poi, PoiCategory};
use crate::road::TransportMode;
use crate::sim::{SimConfig, SimulatedTrack, TripSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semitri_geo::{Point, Rect, Timestamp};

/// A generated dataset: the city sources plus daily tracks.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name ("lausanne-taxis", …).
    pub name: String,
    /// The geographic sources movement was synthesized on.
    pub city: City,
    /// One entry per daily trajectory.
    pub tracks: Vec<SimulatedTrack>,
}

impl Dataset {
    /// Total GPS records over all tracks.
    pub fn total_records(&self) -> usize {
        self.tracks.iter().map(|t| t.len()).sum()
    }

    /// Number of distinct moving objects.
    pub fn object_count(&self) -> usize {
        let mut ids: Vec<u64> = self.tracks.iter().map(|t| t.object_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Mean sampling interval over all tracks, in seconds.
    pub fn mean_sampling_interval(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for t in &self.tracks {
            let raw = t.to_raw();
            if let Some(dt) = raw.mean_sampling_interval() {
                total += dt * (raw.len() - 1) as f64;
                n += raw.len() - 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

fn nearest_poi(city: &City, p: Point, cat: PoiCategory) -> Option<&Poi> {
    city.pois.of_category(cat).min_by(|a, b| {
        a.point
            .distance_sq(p)
            .partial_cmp(&b.point.distance_sq(p))
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

fn random_poi<'c>(city: &'c City, rng: &mut StdRng) -> &'c Poi {
    let pois = city.pois.pois();
    &pois[rng.gen_range(0..pois.len())]
}

/// A dwell anchor near (not exactly at) a POI: people park and enter from
/// tens of meters away, and the receiver sits indoors — the positional
/// ambiguity that motivates the probabilistic stop annotation (§4.3).
fn parking_spot(rng: &mut StdRng, poi: Point) -> Point {
    let r = rng.gen_range(10.0..45.0);
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    poi.offset(r * theta.cos(), r * theta.sin())
}

/// Swisscom-style taxi dataset: 2 taxis, 1 s sampling, continuous driving
/// between passenger destinations with short pickup/drop-off dwells.
/// Produces `2 × days` daily trajectories.
pub fn lausanne_taxis(days: usize, seed: u64) -> Dataset {
    let city = City::generate(CityConfig {
        bounds: Rect::new(0.0, 0.0, 8_000.0, 8_000.0),
        poi_count: 2_000,
        poi_clusters: 6,
        seed,
        ..CityConfig::default()
    });
    let cfg = SimConfig {
        sampling_interval: 1.0,
        sampling_jitter: 0.02,
        noise_sigma: 4.0,
        dropout: 0.005,
        indoor_keep: 0.9, // taxis stay outdoors
    };
    let mut tracks = Vec::new();
    let mut trajectory_id = 0u64;
    for taxi in 0..2u64 {
        for day in 0..days {
            let mut rng = StdRng::seed_from_u64(seed ^ (taxi << 32) ^ day as u64);
            let depot = Point::new(
                city.bounds().width() * rng.gen_range(0.3..0.7),
                city.bounds().height() * rng.gen_range(0.3..0.7),
            );
            let start = Timestamp(day as f64 * 86_400.0 + 7.0 * 3_600.0);
            let mut sim = TripSimulator::new(
                &city.roads,
                cfg,
                seed ^ (taxi << 40) ^ (day as u64) << 8,
                depot,
                start,
            );
            // a shift of passenger rides: drive to a POI, brief dwell
            let rides = rng.gen_range(5..9);
            for _ in 0..rides {
                let dest = random_poi(&city, &mut rng);
                let spot = parking_spot(&mut rng, dest.point);
                if !sim.travel_to(spot, TransportMode::Car) {
                    continue;
                }
                let dwell = rng.gen_range(60.0..240.0);
                sim.dwell(dwell, false, Some((dest.id, dest.category)));
            }
            let track = sim.finish(taxi, trajectory_id);
            trajectory_id += 1;
            if !track.is_empty() {
                tracks.push(track);
            }
        }
    }
    Dataset {
        name: "lausanne-taxis".to_string(),
        city,
        tracks,
    }
}

/// GeoPKDD-style private cars: many cars, ~40 s sampling, one or two trips
/// per day ending at shopping/leisure destinations with long dwells —
/// the workload of the HMM stop-annotation experiment (Fig. 11).
pub fn milan_cars(n_cars: usize, days: usize, seed: u64) -> Dataset {
    milan_cars_with_pois(n_cars, days, 6_000, seed)
}

/// [`milan_cars`] with an explicit POI count — used by the POI-density
/// ablation (the HMM's advantage over one-to-one matching is a function of
/// density, §4.3).
pub fn milan_cars_with_pois(n_cars: usize, days: usize, poi_count: usize, seed: u64) -> Dataset {
    let city = City::generate(CityConfig {
        bounds: Rect::new(0.0, 0.0, 10_000.0, 10_000.0),
        poi_count,
        poi_clusters: 10,
        seed: seed ^ 0x4d69,
        ..CityConfig::default()
    });
    let cfg = SimConfig {
        sampling_interval: 40.0,
        sampling_jitter: 0.25,
        noise_sigma: 8.0,
        dropout: 0.02,
        indoor_keep: 0.85, // parked outdoors near the POI
    };
    let mut tracks = Vec::new();
    let mut trajectory_id = 0u64;
    for car in 0..n_cars as u64 {
        for day in 0..days {
            let mut rng = StdRng::seed_from_u64(seed ^ (car << 20) ^ (day as u64) << 4);
            let home = Point::new(
                city.bounds().width() * rng.gen_range(0.15..0.85),
                city.bounds().height() * rng.gen_range(0.2..0.85),
            );
            let start = Timestamp(day as f64 * 86_400.0 + rng.gen_range(8.0..11.0) * 3_600.0);
            let mut sim = TripSimulator::new(
                &city.roads,
                cfg,
                seed ^ (car << 24) ^ (day as u64),
                home,
                start,
            );
            let trips = rng.gen_range(1..=3);
            for _ in 0..trips {
                // destination purpose biased like Fig. 11: mostly item sale
                // and person life
                let cat = match rng.gen_range(0..100) {
                    0..=49 => PoiCategory::ItemSale,
                    50..=74 => PoiCategory::PersonLife,
                    75..=87 => PoiCategory::Feedings,
                    88..=97 => PoiCategory::Services,
                    _ => PoiCategory::Unknown,
                };
                let target = Point::new(
                    city.bounds().width() * rng.gen_range(0.2..0.8),
                    city.bounds().height() * rng.gen_range(0.2..0.8),
                );
                let Some(dest) = nearest_poi(&city, target, cat) else {
                    continue;
                };
                let (dest_point, dest_id, dest_cat) = (dest.point, dest.id, dest.category);
                let spot = parking_spot(&mut rng, dest_point);
                if !sim.travel_to(spot, TransportMode::Car) {
                    continue;
                }
                sim.dwell(
                    rng.gen_range(1_800.0..5_400.0),
                    false,
                    Some((dest_id, dest_cat)),
                );
            }
            sim.travel_to(home, TransportMode::Car);
            let track = sim.finish(car, trajectory_id);
            trajectory_id += 1;
            if track.len() >= 5 {
                tracks.push(track);
            }
        }
    }
    Dataset {
        name: "milan-cars".to_string(),
        city,
        tracks,
    }
}

/// Krumm-style map-matching benchmark: one continuous two-hour drive over a
/// dense network at 1 s sampling, with the true traversed segment retained
/// for every fix — the input of the Fig. 10 sensitivity sweep.
pub fn seattle_drive(seed: u64) -> Dataset {
    let city = City::generate(CityConfig {
        bounds: Rect::new(0.0, 0.0, 12_000.0, 12_000.0),
        block: 200.0, // dense network: many parallel candidates
        poi_count: 500,
        seed: seed ^ 0x5ea7,
        ..CityConfig::default()
    });
    let cfg = SimConfig {
        sampling_interval: 1.0,
        sampling_jitter: 0.02,
        noise_sigma: 6.0,
        dropout: 0.01,
        indoor_keep: 0.9,
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd21e);
    let start_pos = Point::new(1_500.0, 2_500.0);
    let mut sim = TripSimulator::new(&city.roads, cfg, seed, start_pos, Timestamp(10.0 * 3_600.0));
    // chain waypoints until ~2 simulated hours elapse
    let t_end = 12.0 * 3_600.0;
    while sim.time().0 < t_end {
        let wp = Point::new(
            city.bounds().width() * rng.gen_range(0.1..0.9),
            city.bounds().height() * rng.gen_range(0.15..0.9),
        );
        if !sim.travel_to(wp, TransportMode::Car) {
            break;
        }
    }
    let track = sim.finish(0, 0);
    Dataset {
        name: "seattle-drive".to_string(),
        city,
        tracks: vec![track],
    }
}

/// Per-user personality controlling the Fig. 14 quirks.
#[derive(Debug, Clone, Copy)]
struct Personality {
    home: Point,
    office: Point,
    commute: TransportMode,
    weekend: Weekend,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Weekend {
    /// Hiking in the wooded outskirts (paper's user2).
    Hiking,
    /// Swimming / lakeside leisure (paper's user3 lives near the lake).
    Lakeside,
    /// Shopping downtown.
    Shopping,
    /// Stays home.
    Homebody,
}

/// Resamples a home candidate until it lands on a building cell (up to 40
/// tries): people live in buildings, which anchors the Fig. 14 landuse
/// distributions the way the paper describes.
fn snap_to_building(city: &City, rng: &mut StdRng, sample: impl Fn(&mut StdRng) -> Point) -> Point {
    let mut p = sample(rng);
    for _ in 0..40 {
        if city.landuse.cell_at(p).category == crate::landuse::LanduseCategory::Building {
            return p;
        }
        p = sample(rng);
    }
    p
}

fn personality(city: &City, user: u64, seed: u64) -> Personality {
    let mut rng = StdRng::seed_from_u64(seed ^ user.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let b = city.bounds();
    let (home, weekend) = match user % 4 {
        // lakeside resident: home just above the southern lake strip
        2 => (
            snap_to_building(city, &mut rng, |rng| {
                Point::new(
                    b.width() * rng.gen_range(0.3..0.7),
                    b.height() * rng.gen_range(0.11..0.16),
                )
            }),
            Weekend::Lakeside,
        ),
        // hiker living in the suburbs
        1 => (
            snap_to_building(city, &mut rng, |rng| {
                Point::new(
                    b.width() * rng.gen_range(0.15..0.3),
                    b.height() * rng.gen_range(0.6..0.8),
                )
            }),
            Weekend::Hiking,
        ),
        // downtown dweller in the commercial core
        3 => (
            snap_to_building(city, &mut rng, |rng| {
                Point::new(
                    b.width() * rng.gen_range(0.45..0.55),
                    b.height() * rng.gen_range(0.45..0.55),
                )
            }),
            Weekend::Shopping,
        ),
        // ordinary suburbanite
        _ => (
            snap_to_building(city, &mut rng, |rng| {
                Point::new(
                    b.width() * rng.gen_range(0.6..0.8),
                    b.height() * rng.gen_range(0.55..0.75),
                )
            }),
            Weekend::Homebody,
        ),
    };
    // office: the campus region if present, else city center
    let office = city
        .regions
        .first()
        .map(|r| r.polygon.centroid())
        .unwrap_or_else(|| b.center());
    let commute = match user % 4 {
        0 => TransportMode::Metro,
        1 => TransportMode::Bicycle,
        2 => TransportMode::Bus,
        _ => TransportMode::Walk,
    };
    Personality {
        home,
        office,
        commute,
        weekend,
    }
}

/// Nokia-campaign-style smartphone dataset: `n_users` people tracked for
/// `days` days each, ~10 s irregular sampling, heavy indoor signal loss,
/// multi-modal commutes and user-specific weekend behaviour.
pub fn smartphone_users(n_users: usize, days: usize, seed: u64) -> Dataset {
    let city = City::generate(CityConfig {
        bounds: Rect::new(0.0, 0.0, 9_000.0, 9_000.0),
        poi_count: 3_000,
        poi_clusters: 7,
        seed: seed ^ 0x4e6f,
        ..CityConfig::default()
    });
    let cfg = SimConfig {
        sampling_interval: 10.0,
        sampling_jitter: 0.5,
        noise_sigma: 9.0,
        dropout: 0.05,
        indoor_keep: 0.08,
    };
    let mut tracks = Vec::new();
    let mut trajectory_id = 0u64;
    for user in 0..n_users as u64 {
        let person = personality(&city, user, seed);
        for day in 0..days {
            let mut rng = StdRng::seed_from_u64(seed ^ user.wrapping_mul(31) ^ (day as u64) << 16);
            let weekday = day % 7 < 5;
            let day_base = day as f64 * 86_400.0;
            let mut sim = TripSimulator::new(
                &city.roads,
                cfg,
                seed ^ (user << 16) ^ day as u64,
                person.home,
                Timestamp(day_base + 6.0 * 3_600.0),
            );
            // at home until morning
            sim.dwell(rng.gen_range(1.0..2.5) * 3_600.0, true, None);

            if weekday {
                // commute, with occasional mode deviation
                let mode = if rng.gen_bool(0.8) {
                    person.commute
                } else {
                    [
                        TransportMode::Walk,
                        TransportMode::Bus,
                        TransportMode::Metro,
                    ][rng.gen_range(0..3usize)]
                };
                sim.travel_to(person.office, mode);
                // morning at the office
                sim.dwell(rng.gen_range(2.5..3.5) * 3_600.0, true, None);
                // lunch nearby
                if let Some(lunch) = nearest_poi(&city, person.office, PoiCategory::Feedings) {
                    let (p, id, cat) = (lunch.point, lunch.id, lunch.category);
                    let p = parking_spot(&mut rng, p);
                    sim.travel_to(p, TransportMode::Walk);
                    sim.dwell(rng.gen_range(1_800.0..3_600.0), true, Some((id, cat)));
                    sim.travel_to(person.office, TransportMode::Walk);
                }
                // afternoon at the office
                sim.dwell(rng.gen_range(3.0..4.0) * 3_600.0, true, None);
                // evening errand
                match rng.gen_range(0..10) {
                    0..=2 => {
                        if let Some(market) = nearest_poi(&city, person.home, PoiCategory::ItemSale)
                        {
                            let (p, id, cat) = (market.point, market.id, market.category);
                            let p = parking_spot(&mut rng, p);
                            sim.travel_to(p, person.commute);
                            sim.dwell(rng.gen_range(1_200.0..2_400.0), true, Some((id, cat)));
                        }
                    }
                    3..=4 => {
                        if let Some(gym) =
                            nearest_poi(&city, person.office, PoiCategory::PersonLife)
                        {
                            let (p, id, cat) = (gym.point, gym.id, gym.category);
                            let p = parking_spot(&mut rng, p);
                            sim.travel_to(p, TransportMode::Walk);
                            sim.dwell(rng.gen_range(2_400.0..4_800.0), true, Some((id, cat)));
                        }
                    }
                    _ => {}
                }
                sim.travel_to(person.home, person.commute);
            } else {
                // weekend behaviour per personality
                match person.weekend {
                    Weekend::Hiking => {
                        // out to the wooded outskirts on foot/bike
                        let b = city.bounds();
                        let trail_head = Point::new(b.width() * 0.08, b.height() * 0.9);
                        sim.travel_to(trail_head, TransportMode::Bicycle);
                        sim.dwell(rng.gen_range(2.0..4.0) * 3_600.0, false, None);
                        sim.travel_to(person.home, TransportMode::Bicycle);
                    }
                    Weekend::Lakeside => {
                        let b = city.bounds();
                        let beach = Point::new(b.width() * 0.5, b.height() * 0.06); // on the shore
                        sim.travel_to(beach, TransportMode::Walk);
                        sim.dwell(rng.gen_range(1.5..3.0) * 3_600.0, false, None);
                        sim.travel_to(person.home, TransportMode::Walk);
                    }
                    Weekend::Shopping => {
                        if let Some(mall) =
                            nearest_poi(&city, city.bounds().center(), PoiCategory::ItemSale)
                        {
                            let (p, id, cat) = (mall.point, mall.id, mall.category);
                            let p = parking_spot(&mut rng, p);
                            sim.travel_to(p, person.commute);
                            sim.dwell(rng.gen_range(1.0..2.5) * 3_600.0, true, Some((id, cat)));
                            sim.travel_to(person.home, person.commute);
                        }
                    }
                    Weekend::Homebody => {
                        sim.dwell(rng.gen_range(2.0..5.0) * 3_600.0, true, None);
                    }
                }
            }
            // home for the night
            sim.dwell(rng.gen_range(1.0..2.0) * 3_600.0, true, None);
            let track = sim.finish(user, trajectory_id);
            trajectory_id += 1;
            if track.len() >= 10 {
                tracks.push(track);
            }
        }
    }
    Dataset {
        name: "smartphone-users".to_string(),
        city,
        tracks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxis_dense_sampling_many_records() {
        let d = lausanne_taxis(1, 7);
        assert_eq!(d.object_count(), 2);
        assert_eq!(d.tracks.len(), 2);
        assert!(d.total_records() > 2_000, "{}", d.total_records());
        let dt = d.mean_sampling_interval();
        assert!((0.8..1.5).contains(&dt), "mean dt {dt}");
    }

    #[test]
    fn milan_sparse_sampling() {
        let d = milan_cars(3, 1, 11);
        assert!(d.object_count() >= 2);
        let dt = d.mean_sampling_interval();
        assert!((25.0..60.0).contains(&dt), "mean dt {dt}");
        // ground truth stop categories are present
        let has_stop_truth = d
            .tracks
            .iter()
            .flat_map(|t| &t.truth)
            .any(|tp| tp.stop_category.is_some());
        assert!(has_stop_truth);
    }

    #[test]
    fn seattle_is_one_long_drive_with_truth() {
        let d = seattle_drive(5);
        assert_eq!(d.tracks.len(), 1);
        let t = &d.tracks[0];
        assert!(t.len() > 3_000, "{}", t.len());
        let with_seg = t.truth.iter().filter(|tp| tp.segment.is_some()).count();
        assert!(with_seg as f64 > t.len() as f64 * 0.5);
        // spans roughly two hours
        let span = t.records.last().unwrap().t.since(t.records[0].t);
        assert!(span > 3_600.0, "span {span}");
    }

    #[test]
    fn smartphone_users_are_multimodal_and_gappy() {
        let d = smartphone_users(4, 2, 21);
        assert_eq!(d.object_count(), 4);
        assert_eq!(d.tracks.len(), 8);
        // multiple transport modes appear across users
        let mut modes = std::collections::HashSet::new();
        for t in &d.tracks {
            for tp in &t.truth {
                if let Some(m) = tp.mode {
                    modes.insert(m.label());
                }
            }
        }
        assert!(modes.len() >= 3, "modes {modes:?}");
        // indoor gaps: maximum inter-fix interval far exceeds the nominal dt
        let max_gap = d
            .tracks
            .iter()
            .flat_map(|t| t.records.windows(2).map(|w| w[1].t.since(w[0].t)))
            .fold(0.0f64, f64::max);
        assert!(max_gap > 60.0, "max gap {max_gap}");
    }

    #[test]
    fn presets_are_deterministic() {
        let a = milan_cars(2, 1, 3);
        let b = milan_cars(2, 1, 3);
        assert_eq!(a.total_records(), b.total_records());
        assert_eq!(a.tracks[0].records, b.tracks[0].records);
    }
}
