//! Points of interest with the Milan five-category taxonomy.
//!
//! The paper's Milan source has 39 772 POIs in five top categories —
//! services (4 339), feedings (7 036), item sale (12 510), person life
//! (15 371) and unknown (516) — with "largely varying density" (Fig. 5).
//! [`PoiSet::generate`] reproduces the shape: the same category mix by
//! default, clustered spatially so dense urban blocks carry many candidate
//! POIs per stop (the exact situation the HMM layer is designed for).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semitri_geo::{Point, Rect};

/// Milan-style POI top categories (Fig. 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PoiCategory {
    /// Services (banks, offices, administration).
    Services,
    /// Feedings (restaurants, bars, cafés).
    Feedings,
    /// Item sale (shops, groceries, malls).
    ItemSale,
    /// Person life (sport, health, culture, leisure).
    PersonLife,
    /// Unknown / unclassified.
    Unknown,
}

impl PoiCategory {
    /// All categories in the paper's order.
    pub const ALL: [PoiCategory; 5] = [
        PoiCategory::Services,
        PoiCategory::Feedings,
        PoiCategory::ItemSale,
        PoiCategory::PersonLife,
        PoiCategory::Unknown,
    ];

    /// Paper's Milan counts, used as the default category mix
    /// (and as the HMM initial distribution π in §4.3).
    pub const MILAN_COUNTS: [usize; 5] = [4_339, 7_036, 12_510, 15_371, 516];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            PoiCategory::Services => "services",
            PoiCategory::Feedings => "feedings",
            PoiCategory::ItemSale => "item sale",
            PoiCategory::PersonLife => "person life",
            PoiCategory::Unknown => "unknown",
        }
    }

    /// Dense index in `0..5`.
    pub fn ordinal(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("in ALL")
    }

    /// Category-specific Gaussian influence radius σ_c in meters (§4.3
    /// models each POI as a 2-D Gaussian with category-specific variance):
    /// big-footprint categories (malls, sport centers) spread wider than
    /// small shops.
    pub fn sigma(&self) -> f64 {
        match self {
            PoiCategory::Services => 30.0,
            PoiCategory::Feedings => 20.0,
            PoiCategory::ItemSale => 35.0,
            PoiCategory::PersonLife => 50.0,
            PoiCategory::Unknown => 25.0,
        }
    }
}

/// One point of interest.
#[derive(Debug, Clone, PartialEq)]
pub struct Poi {
    /// Stable identifier.
    pub id: u64,
    /// Position in local meters.
    pub point: Point,
    /// Top category.
    pub category: PoiCategory,
    /// Display name.
    pub name: String,
}

/// A collection of POIs over an area.
#[derive(Debug, Clone, Default)]
pub struct PoiSet {
    pois: Vec<Poi>,
}

impl PoiSet {
    /// Wraps an explicit POI list.
    pub fn new(pois: Vec<Poi>) -> Self {
        Self { pois }
    }

    /// Adds a POI with a fresh id (one past the current maximum) and
    /// returns that id. Used by the live-update path; readers only observe
    /// the addition through the next published snapshot generation.
    pub fn push(&mut self, point: Point, category: PoiCategory, name: String) -> u64 {
        assert!(
            point.x.is_finite() && point.y.is_finite(),
            "POI coordinates must be finite"
        );
        let id = self.pois.iter().map(|p| p.id + 1).max().unwrap_or(0);
        self.pois.push(Poi {
            id,
            point,
            category,
            name,
        });
        id
    }

    /// Generates `total` POIs over `bounds` with the Milan category mix.
    ///
    /// Spatial layout: a configurable number of urban clusters (2-D
    /// Gaussians with varying spread) plus a uniform background, so POI
    /// density varies by orders of magnitude across the area — the paper's
    /// motivating condition for probabilistic stop annotation.
    pub fn generate(bounds: Rect, total: usize, clusters: usize, seed: u64) -> Self {
        Self::generate_masked(bounds, total, clusters, seed, |_| true)
    }

    /// [`PoiSet::generate`] with a placement mask: positions where
    /// `allowed` returns `false` are resampled (shops don't open in lakes
    /// or on glaciers). Falls back to the last sample after 32 rejections
    /// so pathological masks can't loop forever.
    pub fn generate_masked(
        bounds: Rect,
        total: usize,
        clusters: usize,
        seed: u64,
        allowed: impl Fn(Point) -> bool,
    ) -> Self {
        assert!(!bounds.is_empty(), "POI bounds must be non-empty");
        assert!(clusters >= 1, "need at least one cluster");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0070_6f69);
        let total_milan: usize = PoiCategory::MILAN_COUNTS.iter().sum();

        // cluster centers biased toward the urban middle of the map
        let centers: Vec<(Point, f64)> = (0..clusters)
            .map(|_| {
                let cx = bounds.min_x + bounds.width() * rng.gen_range(0.25..0.75);
                let cy = bounds.min_y + bounds.height() * rng.gen_range(0.25..0.75);
                let spread = bounds.width().min(bounds.height()) * rng.gen_range(0.02..0.08);
                (Point::new(cx, cy), spread)
            })
            .collect();

        let mut pois = Vec::with_capacity(total);
        for id in 0..total {
            // category by the Milan mix
            let mut pick = rng.gen_range(0..total_milan);
            let mut category = PoiCategory::Unknown;
            for (c, &n) in PoiCategory::ALL.iter().zip(&PoiCategory::MILAN_COUNTS) {
                if pick < n {
                    category = *c;
                    break;
                }
                pick -= n;
            }
            // position: 85% clustered, 15% uniform background, rejecting
            // masked-out locations
            let mut point = Point::ORIGIN;
            for _attempt in 0..32 {
                point = if rng.gen_bool(0.85) {
                    let (c, spread) = centers[rng.gen_range(0..centers.len())];
                    // Box-Muller normal around the cluster center
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                    let r = spread * (-2.0 * u1.ln()).sqrt();
                    Point::new(
                        (c.x + r * u2.cos()).clamp(bounds.min_x, bounds.max_x),
                        (c.y + r * u2.sin()).clamp(bounds.min_y, bounds.max_y),
                    )
                } else {
                    Point::new(
                        rng.gen_range(bounds.min_x..bounds.max_x),
                        rng.gen_range(bounds.min_y..bounds.max_y),
                    )
                };
                if allowed(point) {
                    break;
                }
            }
            pois.push(Poi {
                id: id as u64,
                point,
                category,
                name: format!("{} #{id}", category.label()),
            });
        }
        Self { pois }
    }

    /// The POIs.
    #[inline]
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// Number of POIs.
    #[inline]
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// `true` when there are no POIs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// Per-category counts, indexed by [`PoiCategory::ordinal`].
    pub fn category_histogram(&self) -> [usize; 5] {
        let mut h = [0usize; 5];
        for p in &self.pois {
            h[p.category.ordinal()] += 1;
        }
        h
    }

    /// POIs of one category.
    pub fn of_category(&self, cat: PoiCategory) -> impl Iterator<Item = &Poi> {
        self.pois.iter().filter(move |p| p.category == cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> PoiSet {
        PoiSet::generate(Rect::new(0.0, 0.0, 10_000.0, 10_000.0), 5_000, 8, 11)
    }

    #[test]
    fn milan_counts_sum() {
        assert_eq!(PoiCategory::MILAN_COUNTS.iter().sum::<usize>(), 39_772);
    }

    #[test]
    fn generated_count_and_bounds() {
        let s = set();
        assert_eq!(s.len(), 5_000);
        let b = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
        assert!(s.pois().iter().all(|p| b.contains_point(p.point)));
    }

    #[test]
    fn category_mix_tracks_milan_shares() {
        let s = set();
        let h = s.category_histogram();
        assert_eq!(h.iter().sum::<usize>(), 5_000);
        // person life (38.6%) must dominate; unknown (1.3%) must be rare
        assert!(h[PoiCategory::PersonLife.ordinal()] > h[PoiCategory::Services.ordinal()]);
        assert!(h[PoiCategory::ItemSale.ordinal()] > h[PoiCategory::Feedings.ordinal()]);
        let unknown_share = h[PoiCategory::Unknown.ordinal()] as f64 / 5_000.0;
        assert!(unknown_share < 0.05, "unknown share {unknown_share}");
    }

    #[test]
    fn density_varies_clustered_vs_background() {
        let s = set();
        // count POIs in 200x200 windows; max should dwarf the median
        let mut counts = Vec::new();
        for i in 0..50 {
            for j in 0..50 {
                let w = Rect::new(
                    i as f64 * 200.0,
                    j as f64 * 200.0,
                    (i + 1) as f64 * 200.0,
                    (j + 1) as f64 * 200.0,
                );
                counts.push(
                    s.pois()
                        .iter()
                        .filter(|p| w.contains_point(p.point))
                        .count(),
                );
            }
        }
        counts.sort_unstable();
        let max = *counts.last().unwrap();
        let median = counts[counts.len() / 2];
        assert!(max >= 10 * (median.max(1)), "max {max}, median {median}");
    }

    #[test]
    fn deterministic_generation() {
        let a = set();
        let b = set();
        assert_eq!(a.pois()[17], b.pois()[17]);
        assert_eq!(a.category_histogram(), b.category_histogram());
    }

    #[test]
    fn of_category_filters() {
        let s = set();
        let n: usize = PoiCategory::ALL
            .iter()
            .map(|&c| s.of_category(c).count())
            .sum();
        assert_eq!(n, s.len());
        assert!(s
            .of_category(PoiCategory::Feedings)
            .all(|p| p.category == PoiCategory::Feedings));
    }

    #[test]
    fn sigma_positive_for_all() {
        for c in PoiCategory::ALL {
            assert!(c.sigma() > 0.0);
        }
    }
}
