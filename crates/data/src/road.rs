//! Multi-class road networks with mode-restricted routing.
//!
//! The line-annotation layer (Algorithm 2) needs a road network of
//! heterogeneous classes — the paper's people trajectories mix roads, metro
//! lines and walk-ways. This module provides the network model, a
//! deterministic city-grid generator and Dijkstra routing restricted to a
//! [`TransportMode`], which the trip simulator uses to synthesize realistic
//! multi-modal movement with per-point ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semitri_geo::{Point, Polyline, Rect, Segment};
use std::collections::BinaryHeap;

/// Identifier of a road segment within its [`RoadNetwork`].
pub type SegmentId = u32;
/// Identifier of a network node (crossing / station).
pub type NodeId = u32;

/// Functional class of a road segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadClass {
    /// High-speed arterial; cars only.
    Highway,
    /// Regular city street; cars, bikes, pedestrians, buses (when flagged).
    Street,
    /// Pedestrian/bicycle path (park walkway, campus path).
    Path,
    /// Metro rail; metro trains only.
    Rail,
}

impl RoadClass {
    /// Every class, in a stable order ([`RoadClass::ordinal`] indexes it).
    pub const ALL: [RoadClass; 4] = [
        RoadClass::Highway,
        RoadClass::Street,
        RoadClass::Path,
        RoadClass::Rail,
    ];

    /// Dense index of this class within [`RoadClass::ALL`].
    pub fn ordinal(&self) -> usize {
        match self {
            RoadClass::Highway => 0,
            RoadClass::Street => 1,
            RoadClass::Path => 2,
            RoadClass::Rail => 3,
        }
    }

    /// Short display label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            RoadClass::Highway => "highway",
            RoadClass::Street => "street",
            RoadClass::Path => "path_way",
            RoadClass::Rail => "rail",
        }
    }
}

/// Transportation modes the paper infers (§4.2: walking, bicycle, bus,
/// metro) plus `Car` for the vehicle datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportMode {
    /// On foot.
    Walk,
    /// Bicycle.
    Bicycle,
    /// Public bus (only on bus-flagged streets).
    Bus,
    /// Metro (only on rail).
    Metro,
    /// Private car / taxi.
    Car,
}

impl TransportMode {
    /// All modes, in a stable order.
    pub const ALL: [TransportMode; 5] = [
        TransportMode::Walk,
        TransportMode::Bicycle,
        TransportMode::Bus,
        TransportMode::Metro,
        TransportMode::Car,
    ];

    /// Typical cruise speed in m/s; the simulator jitters around this and
    /// the mode-inference classifier thresholds against it.
    pub fn cruise_speed(&self) -> f64 {
        match self {
            TransportMode::Walk => 1.4,
            TransportMode::Bicycle => 4.2,
            TransportMode::Bus => 7.0,
            TransportMode::Metro => 16.0,
            TransportMode::Car => 12.0,
        }
    }

    /// Speed of this mode on the given segment, or `None` when the segment
    /// cannot be used by the mode.
    pub fn speed_on(&self, seg: &RoadSegment) -> Option<f64> {
        match (self, seg.class) {
            (TransportMode::Walk, RoadClass::Street | RoadClass::Path) => Some(1.4),
            (TransportMode::Bicycle, RoadClass::Street | RoadClass::Path) => Some(4.2),
            (TransportMode::Bus, RoadClass::Street) if seg.bus_route => Some(7.0),
            (TransportMode::Metro, RoadClass::Rail) => Some(16.0),
            (TransportMode::Car, RoadClass::Street) => Some(12.0),
            (TransportMode::Car, RoadClass::Highway) => Some(25.0),
            _ => None,
        }
    }

    /// Display label ("walk", "metro", …).
    pub fn label(&self) -> &'static str {
        match self {
            TransportMode::Walk => "walk",
            TransportMode::Bicycle => "bicycle",
            TransportMode::Bus => "bus",
            TransportMode::Metro => "metro",
            TransportMode::Car => "car",
        }
    }
}

/// One road segment: an edge of the network with geometry and metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadSegment {
    /// Identifier (index into [`RoadNetwork::segments`]).
    pub id: SegmentId,
    /// Start node.
    pub from: NodeId,
    /// End node.
    pub to: NodeId,
    /// Geometry (straight segment between the two crossings).
    pub geometry: Segment,
    /// Functional class.
    pub class: RoadClass,
    /// `true` when a bus line runs on this street.
    pub bus_route: bool,
    /// Street name (grid lines share names, like real streets).
    pub name: String,
}

impl RoadSegment {
    /// Segment length in meters.
    #[inline]
    pub fn length(&self) -> f64 {
        self.geometry.length()
    }
}

/// A routable road network.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    segments: Vec<RoadSegment>,
    /// adjacency\[node\] = list of (segment id, neighbor node)
    adjacency: Vec<Vec<(SegmentId, NodeId)>>,
}

/// Snapshot conversion: annotators own their network behind an `Arc` so
/// generation swaps can retire and replace it without lifetimes; borrowing
/// callers keep working by cloning into a fresh `Arc` at construction.
impl From<&RoadNetwork> for std::sync::Arc<RoadNetwork> {
    fn from(net: &RoadNetwork) -> Self {
        std::sync::Arc::new(net.clone())
    }
}

/// A route through the network: an ordered list of segment ids plus the
/// traversal geometry.
#[derive(Debug, Clone)]
pub struct Route {
    /// Traversed segments in order.
    pub segments: Vec<SegmentId>,
    /// Node sequence (`segments.len() + 1` nodes).
    pub nodes: Vec<NodeId>,
    /// Geometry through the node points.
    pub polyline: Polyline,
    /// Cumulative distance at the *end* of each segment.
    cum: Vec<f64>,
}

impl Route {
    /// Total route length in meters.
    pub fn length(&self) -> f64 {
        self.cum.last().copied().unwrap_or(0.0)
    }

    /// The segment being traversed at curvilinear distance `d` from the
    /// start (clamped to the route ends). `None` for an empty route.
    pub fn segment_at_distance(&self, d: f64) -> Option<SegmentId> {
        if self.segments.is_empty() {
            return None;
        }
        let idx = self.cum.partition_point(|&c| c < d);
        Some(self.segments[idx.min(self.segments.len() - 1)])
    }
}

impl RoadNetwork {
    /// Builds a network from nodes and segment descriptors
    /// `(from, to, class, bus_route, name)`.
    ///
    /// # Panics
    /// Panics on dangling node references or zero-length edges.
    pub fn new(nodes: Vec<Point>, edges: Vec<(NodeId, NodeId, RoadClass, bool, String)>) -> Self {
        let mut segments = Vec::with_capacity(edges.len());
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for (i, (from, to, class, bus_route, name)) in edges.into_iter().enumerate() {
            let (f, t) = (from as usize, to as usize);
            assert!(f < nodes.len() && t < nodes.len(), "dangling node id");
            assert_ne!(f, t, "self-loop edge");
            let geometry = Segment::new(nodes[f], nodes[t]);
            assert!(geometry.length() > 0.0, "zero-length edge");
            let id = i as SegmentId;
            segments.push(RoadSegment {
                id,
                from,
                to,
                geometry,
                class,
                bus_route,
                name,
            });
            adjacency[f].push((id, to));
            adjacency[t].push((id, from));
        }
        Self {
            nodes,
            segments,
            adjacency,
        }
    }

    /// Adds a node (crossing / station) and returns its id. The node is
    /// isolated until an edge references it.
    ///
    /// # Panics
    /// Panics on non-finite coordinates.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        assert!(
            p.x.is_finite() && p.y.is_finite(),
            "node coordinates must be finite"
        );
        let id = self.nodes.len() as NodeId;
        self.nodes.push(p);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds a segment between two existing nodes, maintaining the adjacency
    /// lists, and returns its id.
    ///
    /// # Panics
    /// Panics on dangling node references, self-loops or zero-length edges
    /// — the same invariants [`RoadNetwork::new`] enforces.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: RoadClass,
        bus_route: bool,
        name: String,
    ) -> SegmentId {
        let (f, t) = (from as usize, to as usize);
        assert!(
            f < self.nodes.len() && t < self.nodes.len(),
            "dangling node id"
        );
        assert_ne!(f, t, "self-loop edge");
        let geometry = Segment::new(self.nodes[f], self.nodes[t]);
        assert!(geometry.length() > 0.0, "zero-length edge");
        let id = self.segments.len() as SegmentId;
        self.segments.push(RoadSegment {
            id,
            from,
            to,
            geometry,
            class,
            bus_route,
            name,
        });
        self.adjacency[f].push((id, to));
        self.adjacency[t].push((id, from));
        id
    }

    /// All nodes.
    #[inline]
    pub fn nodes(&self) -> &[Point] {
        &self.nodes
    }

    /// All segments.
    #[inline]
    pub fn segments(&self) -> &[RoadSegment] {
        &self.segments
    }

    /// Segment by id.
    #[inline]
    pub fn segment(&self, id: SegmentId) -> &RoadSegment {
        &self.segments[id as usize]
    }

    /// Node position by id.
    #[inline]
    pub fn node(&self, id: NodeId) -> Point {
        self.nodes[id as usize]
    }

    /// Nodes reachable by `mode` (incident to at least one usable segment).
    /// For [`TransportMode::Metro`] these are exactly the stations.
    pub fn access_nodes(&self, mode: TransportMode) -> Vec<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&n| {
                self.adjacency[n as usize]
                    .iter()
                    .any(|&(s, _)| mode.speed_on(self.segment(s)).is_some())
            })
            .collect()
    }

    /// The access node of `mode` nearest to `p` (linear scan; the generator
    /// networks are small enough and trip planning is off the hot path).
    pub fn nearest_access_node(&self, p: Point, mode: TransportMode) -> Option<NodeId> {
        self.access_nodes(mode).into_iter().min_by(|&a, &b| {
            let da = self.node(a).distance_sq(p);
            let db = self.node(b).distance_sq(p);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Shortest route (by travel time for `mode`) between two nodes, or
    /// `None` when unreachable.
    pub fn route(&self, from: NodeId, to: NodeId, mode: TransportMode) -> Option<Route> {
        #[derive(PartialEq)]
        struct State {
            cost: f64,
            node: NodeId,
        }
        impl Eq for State {}
        impl Ord for State {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .cost
                    .partial_cmp(&self.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(NodeId, SegmentId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from as usize] = 0.0;
        heap.push(State {
            cost: 0.0,
            node: from,
        });
        while let Some(State { cost, node }) = heap.pop() {
            if node == to {
                break;
            }
            if cost > dist[node as usize] {
                continue;
            }
            for &(seg_id, next) in &self.adjacency[node as usize] {
                let seg = self.segment(seg_id);
                let Some(speed) = mode.speed_on(seg) else {
                    continue;
                };
                let next_cost = cost + seg.length() / speed;
                if next_cost < dist[next as usize] {
                    dist[next as usize] = next_cost;
                    prev[next as usize] = Some((node, seg_id));
                    heap.push(State {
                        cost: next_cost,
                        node: next,
                    });
                }
            }
        }
        if from != to && prev[to as usize].is_none() {
            return None;
        }

        // reconstruct
        let mut seg_ids = Vec::new();
        let mut node_ids = vec![to];
        let mut cur = to;
        while cur != from {
            let (p, s) = prev[cur as usize].expect("path recorded");
            seg_ids.push(s);
            node_ids.push(p);
            cur = p;
        }
        seg_ids.reverse();
        node_ids.reverse();
        let polyline: Polyline = node_ids.iter().map(|&nid| self.node(nid)).collect();
        let mut cum = Vec::with_capacity(seg_ids.len());
        let mut acc = 0.0;
        for &s in &seg_ids {
            acc += self.segment(s).length();
            cum.push(acc);
        }
        Some(Route {
            segments: seg_ids,
            nodes: node_ids,
            polyline,
            cum,
        })
    }

    /// Generates a deterministic city grid network over `bounds`:
    ///
    /// * streets every `block` meters in both directions (named per grid
    ///   line), with small node jitter for realism;
    /// * two highway arterials crossing mid-city;
    /// * a metro line along the central east–west and north–south streets
    ///   with stations every other crossing;
    /// * diagonal park paths in the outer ring;
    /// * every third north–south street carries a bus route.
    ///
    /// The layout stays clear of the southern lake strip produced by
    /// [`crate::landuse::LanduseGrid::generate`].
    pub fn generate_grid(bounds: Rect, block: f64, seed: u64) -> Self {
        assert!(block > 0.0, "block size must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x726f_6164);
        let margin = block; // stay inside bounds
        let lake = bounds.height() * 0.10; // keep out of the lake strip
        let x0 = bounds.min_x + margin;
        let y0 = bounds.min_y + lake + margin;
        let nx = (((bounds.max_x - margin) - x0) / block).floor() as usize + 1;
        let ny = (((bounds.max_y - margin) - y0) / block).floor() as usize + 1;
        assert!(nx >= 3 && ny >= 3, "bounds too small for a city grid");

        let jitter = block * 0.06;
        let mut nodes = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                // border nodes stay exact so arterials stay straight
                let (jx, jy) = if i == 0 || j == 0 || i == nx - 1 || j == ny - 1 {
                    (0.0, 0.0)
                } else {
                    (
                        rng.gen_range(-jitter..jitter),
                        rng.gen_range(-jitter..jitter),
                    )
                };
                nodes.push(Point::new(
                    x0 + i as f64 * block + jx,
                    y0 + j as f64 * block + jy,
                ));
            }
        }
        let node_id = |i: usize, j: usize| (j * nx + i) as NodeId;

        let mid_i = nx / 2;
        let mid_j = ny / 2;
        let mut edges: Vec<(NodeId, NodeId, RoadClass, bool, String)> = Vec::new();

        // streets + highways
        for j in 0..ny {
            for i in 0..nx {
                if i + 1 < nx {
                    let class = if j == mid_j {
                        RoadClass::Highway
                    } else {
                        RoadClass::Street
                    };
                    let bus = j % 3 == 2 && class == RoadClass::Street;
                    let name = if j == mid_j {
                        "Highway E-W".to_string()
                    } else {
                        format!("Avenue A{j}")
                    };
                    edges.push((node_id(i, j), node_id(i + 1, j), class, bus, name));
                }
                if j + 1 < ny {
                    let class = if i == mid_i {
                        RoadClass::Highway
                    } else {
                        RoadClass::Street
                    };
                    let bus = i % 3 == 1 && class == RoadClass::Street;
                    let name = if i == mid_i {
                        "Highway N-S".to_string()
                    } else {
                        format!("Rue R{i}")
                    };
                    edges.push((node_id(i, j), node_id(i, j + 1), class, bus, name));
                }
            }
        }

        // metro lines: one row and one column offset from the highways,
        // stations at every other crossing (edges span two blocks)
        // station indices are even, so rounding both line offsets to even
        // guarantees a shared transfer station at (metro_i, metro_j)
        let metro_j = ((mid_j + 2) & !1).min(ny - 1);
        let mut i = 0;
        while i + 2 < nx {
            edges.push((
                node_id(i, metro_j),
                node_id(i + 2, metro_j),
                RoadClass::Rail,
                false,
                "M1".to_string(),
            ));
            i += 2;
        }
        let metro_i = ((mid_i + 2) & !1).min(nx - 1);
        let mut j = 0;
        while j + 2 < ny {
            edges.push((
                node_id(metro_i, j),
                node_id(metro_i, j + 2),
                RoadClass::Rail,
                false,
                "M2".to_string(),
            ));
            j += 2;
        }

        // park paths: diagonals in the outer ring
        for j in 0..ny - 1 {
            for i in 0..nx - 1 {
                let on_ring = i < 2 || j < 2 || i >= nx - 3 || j >= ny - 3;
                if on_ring && rng.gen_bool(0.35) {
                    edges.push((
                        node_id(i, j),
                        node_id(i + 1, j + 1),
                        RoadClass::Path,
                        false,
                        format!("Path P{i}-{j}"),
                    ));
                }
            }
        }

        Self::new(nodes, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network() -> RoadNetwork {
        RoadNetwork::generate_grid(Rect::new(0.0, 0.0, 4_000.0, 4_000.0), 250.0, 7)
    }

    #[test]
    fn grid_has_all_classes() {
        let net = network();
        assert!(!net.segments().is_empty());
        for class in [
            RoadClass::Highway,
            RoadClass::Street,
            RoadClass::Path,
            RoadClass::Rail,
        ] {
            assert!(
                net.segments().iter().any(|s| s.class == class),
                "missing {class:?}"
            );
        }
        assert!(net.segments().iter().any(|s| s.bus_route));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = network();
        let b = network();
        assert_eq!(a.segments().len(), b.segments().len());
        assert_eq!(a.node(17), b.node(17));
        assert_eq!(a.segment(33).name, b.segment(33).name);
    }

    #[test]
    fn mode_permissions() {
        let net = network();
        let highway = net
            .segments()
            .iter()
            .find(|s| s.class == RoadClass::Highway)
            .unwrap();
        assert!(TransportMode::Car.speed_on(highway).is_some());
        assert!(TransportMode::Walk.speed_on(highway).is_none());
        assert!(TransportMode::Metro.speed_on(highway).is_none());

        let rail = net
            .segments()
            .iter()
            .find(|s| s.class == RoadClass::Rail)
            .unwrap();
        assert!(TransportMode::Metro.speed_on(rail).is_some());
        assert!(TransportMode::Car.speed_on(rail).is_none());

        let bus_street = net.segments().iter().find(|s| s.bus_route).unwrap();
        assert!(TransportMode::Bus.speed_on(bus_street).is_some());
        let plain_street = net
            .segments()
            .iter()
            .find(|s| s.class == RoadClass::Street && !s.bus_route)
            .unwrap();
        assert!(TransportMode::Bus.speed_on(plain_street).is_none());
    }

    #[test]
    fn car_route_connects_corners() {
        let net = network();
        let from = net
            .nearest_access_node(Point::new(300.0, 700.0), TransportMode::Car)
            .unwrap();
        let to = net
            .nearest_access_node(Point::new(3_700.0, 3_700.0), TransportMode::Car)
            .unwrap();
        let route = net.route(from, to, TransportMode::Car).expect("reachable");
        assert!(!route.segments.is_empty());
        assert_eq!(route.nodes.len(), route.segments.len() + 1);
        assert!(route.length() > 3_000.0);
        // every traversed segment is usable by car
        for &s in &route.segments {
            assert!(TransportMode::Car.speed_on(net.segment(s)).is_some());
        }
        // endpoints match
        assert_eq!(route.nodes[0], from);
        assert_eq!(*route.nodes.last().unwrap(), to);
    }

    #[test]
    fn metro_route_uses_only_rail() {
        let net = network();
        let stations = net.access_nodes(TransportMode::Metro);
        assert!(stations.len() >= 4);
        let route = net.route(stations[0], *stations.last().unwrap(), TransportMode::Metro);
        // stations on different lines may be unreachable without transfer
        // nodes, but same-line stations must connect:
        let line: Vec<NodeId> = stations
            .iter()
            .copied()
            .filter(|&s| {
                net.adjacency[s as usize]
                    .iter()
                    .any(|&(e, _)| net.segment(e).name == "M1")
            })
            .collect();
        let r = net
            .route(line[0], *line.last().unwrap(), TransportMode::Metro)
            .expect("same line reachable");
        for &s in &r.segments {
            assert_eq!(net.segment(s).class, RoadClass::Rail);
        }
        drop(route);
    }

    #[test]
    fn route_to_self_is_empty() {
        let net = network();
        let r = net.route(5, 5, TransportMode::Walk).expect("trivial route");
        assert!(r.segments.is_empty());
        assert_eq!(r.length(), 0.0);
        assert_eq!(r.segment_at_distance(0.0), None);
    }

    #[test]
    fn segment_at_distance_walks_route() {
        let net = network();
        let from = net
            .nearest_access_node(Point::new(300.0, 700.0), TransportMode::Walk)
            .unwrap();
        let to = net
            .nearest_access_node(Point::new(2_000.0, 2_000.0), TransportMode::Walk)
            .unwrap();
        let r = net.route(from, to, TransportMode::Walk).expect("reachable");
        assert_eq!(r.segment_at_distance(0.0), Some(r.segments[0]));
        assert_eq!(
            r.segment_at_distance(r.length() + 100.0),
            Some(*r.segments.last().unwrap())
        );
        // distances are monotone over segments
        let first_len = net.segment(r.segments[0]).length();
        assert_eq!(
            r.segment_at_distance(first_len + 0.1),
            Some(r.segments[1.min(r.segments.len() - 1)])
        );
    }

    #[test]
    fn unreachable_returns_none() {
        // two isolated nodes with one street between node 0 and 1 only
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(110.0, 100.0),
        ];
        let edges = vec![
            (0, 1, RoadClass::Street, false, "a".to_string()),
            (2, 3, RoadClass::Rail, false, "m".to_string()),
        ];
        let net = RoadNetwork::new(nodes, edges);
        assert!(net.route(0, 2, TransportMode::Car).is_none());
        // walk cannot use rail
        assert!(net.route(2, 3, TransportMode::Walk).is_none());
        assert!(net.route(2, 3, TransportMode::Metro).is_some());
    }

    #[test]
    fn access_nodes_for_metro_are_station_subset() {
        let net = network();
        let stations = net.access_nodes(TransportMode::Metro);
        let walkers = net.access_nodes(TransportMode::Walk);
        assert!(stations.len() < walkers.len());
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn new_rejects_dangling_edges() {
        RoadNetwork::new(
            vec![Point::new(0.0, 0.0)],
            vec![(0, 5, RoadClass::Street, false, "x".to_string())],
        );
    }
}
