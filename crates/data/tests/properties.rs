//! Property-based tests for the data substrate: routing optimality and
//! simulator ground-truth consistency.

use proptest::prelude::*;
use semitri_data::road::{NodeId, RoadClass, RoadNetwork};
use semitri_data::sim::{SimConfig, TripSimulator};
use semitri_data::{City, CityConfig, TransportMode};
use semitri_geo::{Point, Rect, Timestamp};

/// Random connected street network: a chain plus chords.
fn network_strategy() -> impl Strategy<Value = RoadNetwork> {
    (
        proptest::collection::vec((0.0..2_000.0f64, 0.0..2_000.0f64), 4..10),
        proptest::collection::vec((0usize..10, 0usize..10), 0..10),
    )
        .prop_map(|(mut xy, chords)| {
            for (i, p) in xy.iter_mut().enumerate() {
                p.0 += i as f64 * 101.0; // de-duplicate positions
            }
            let nodes: Vec<Point> = xy.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let n = nodes.len();
            let mut edges = Vec::new();
            for i in 0..n - 1 {
                edges.push((
                    i as u32,
                    (i + 1) as u32,
                    RoadClass::Street,
                    false,
                    format!("e{i}"),
                ));
            }
            for (a, b) in chords {
                let (a, b) = (a % n, b % n);
                if a != b && nodes[a].distance(nodes[b]) > 1.0 {
                    edges.push((
                        a as u32,
                        b as u32,
                        RoadClass::Street,
                        false,
                        "c".to_string(),
                    ));
                }
            }
            RoadNetwork::new(nodes, edges)
        })
}

/// Brute-force shortest travel time by Bellman-Ford over all edges.
fn brute_force_cost(
    net: &RoadNetwork,
    from: NodeId,
    to: NodeId,
    mode: TransportMode,
) -> Option<f64> {
    let n = net.nodes().len();
    let mut dist = vec![f64::INFINITY; n];
    dist[from as usize] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for seg in net.segments() {
            let Some(speed) = mode.speed_on(seg) else {
                continue;
            };
            let w = seg.length() / speed;
            let (a, b) = (seg.from as usize, seg.to as usize);
            if dist[a] + w < dist[b] {
                dist[b] = dist[a] + w;
                changed = true;
            }
            if dist[b] + w < dist[a] {
                dist[a] = dist[b] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist[to as usize].is_finite().then_some(dist[to as usize])
}

fn route_cost(net: &RoadNetwork, segments: &[u32], mode: TransportMode) -> f64 {
    segments
        .iter()
        .map(|&s| {
            let seg = net.segment(s);
            seg.length() / mode.speed_on(seg).expect("route uses legal segments")
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dijkstra_route_is_optimal(net in network_strategy(), from in 0usize..10, to in 0usize..10) {
        let n = net.nodes().len();
        let (from, to) = ((from % n) as NodeId, (to % n) as NodeId);
        let mode = TransportMode::Car;
        let route = net.route(from, to, mode);
        let brute = brute_force_cost(&net, from, to, mode);
        match (route, brute) {
            (Some(r), Some(best)) => {
                let cost = route_cost(&net, &r.segments, mode);
                prop_assert!((cost - best).abs() < 1e-6, "dijkstra {cost} vs brute {best}");
                // route is a connected walk from `from` to `to`
                prop_assert_eq!(r.nodes[0], from);
                prop_assert_eq!(*r.nodes.last().unwrap(), to);
                for w in r.nodes.windows(2) {
                    let hop_exists = net.segments().iter().any(|s| {
                        (s.from == w[0] && s.to == w[1]) || (s.from == w[1] && s.to == w[0])
                    });
                    prop_assert!(hop_exists, "missing hop {:?}", w);
                }
            }
            (None, None) => {}
            (r, b) => prop_assert!(false, "reachability mismatch: route {:?} vs brute {:?}", r.map(|r| r.segments.len()), b),
        }
    }

    #[test]
    fn simulator_truth_segments_are_mode_legal(seed in 0u64..50) {
        let city = City::generate(CityConfig {
            bounds: Rect::new(0.0, 0.0, 4_000.0, 4_000.0),
            poi_count: 100,
            region_count: 3,
            seed: 9,
            ..CityConfig::default()
        });
        let mut sim = TripSimulator::new(
            &city.roads,
            SimConfig::default(),
            seed,
            Point::new(800.0, 900.0),
            Timestamp(0.0),
        );
        sim.travel_to(Point::new(3_200.0, 3_100.0), TransportMode::Bicycle);
        sim.dwell(200.0, false, None);
        let track = sim.finish(0, 0);
        prop_assert_eq!(track.records.len(), track.truth.len());
        for (r, t) in track.records.iter().zip(&track.truth) {
            prop_assert!(r.point.is_finite());
            if let (Some(seg), Some(mode)) = (t.segment, t.mode) {
                // the declared segment must be usable by the declared mode
                prop_assert!(
                    mode.speed_on(city.roads.segment(seg)).is_some(),
                    "mode {mode:?} cannot use segment {seg}"
                );
                // and the true position is near that segment (noise-bounded)
                let d = city.roads.segment(seg).geometry.distance_to_point(r.point);
                prop_assert!(d < 120.0, "fix {d} m from its true segment");
            }
        }
        // timestamps strictly advance on emissions
        for w in track.records.windows(2) {
            prop_assert!(w[1].t.0 >= w[0].t.0);
        }
    }
}
