//! Daily life: multi-modal people trajectories with activity inference —
//! the paper's §5.3 scenario (Figs. 14–16).
//!
//! Annotates a week of smartphone traces for a few users, printing each
//! user's inferred transport-mode mix, stop activities and top landuse
//! categories.
//!
//! Run with: `cargo run --release -p semitri --example daily_life`

use semitri::prelude::*;
use std::collections::HashMap;

/// Per-user aggregation state.
type UserAgg = (
    LanduseDistribution,
    HashMap<&'static str, usize>,
    CategoryShares,
    UserEpisodeCounts,
);

fn main() {
    let dataset = smartphone_users(4, 7, 2024);
    println!(
        "dataset '{}': {} users, {} daily trajectories, {} GPS records",
        dataset.name,
        dataset.object_count(),
        dataset.tracks.len(),
        dataset.total_records()
    );

    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());

    // per-user aggregation
    let mut per_user: HashMap<u64, UserAgg> = HashMap::new();

    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());
        let entry = per_user.entry(track.object_id).or_insert_with(|| {
            (
                LanduseDistribution::default(),
                HashMap::new(),
                CategoryShares::default(),
                UserEpisodeCounts {
                    user: track.object_id,
                    ..Default::default()
                },
            )
        });
        entry.0.merge(&LanduseDistribution::of_trajectory(
            semitri.region_annotator(),
            &out.cleaned,
        ));
        for (_, entries) in &out.move_routes {
            for e in entries {
                if let Some(m) = e.mode {
                    *entry.1.entry(m.label()).or_insert(0) += e.end - e.start;
                }
            }
        }
        for (_, ann) in &out.stop_annotations {
            entry.2.add(ann.category);
        }
        entry.3.add_trajectory(out.cleaned.len(), &out.episodes);
    }

    let mut users: Vec<u64> = per_user.keys().copied().collect();
    users.sort_unstable();
    for user in users {
        let (landuse, modes, activities, counts) = &per_user[&user];
        println!(
            "\nuser {user}: {} trajectories, {} stops, {} moves, {} records",
            counts.trajectories, counts.stops, counts.moves, counts.gps_records
        );
        let mut mode_list: Vec<(&str, usize)> = modes.iter().map(|(&k, &v)| (k, v)).collect();
        mode_list.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let mode_str: Vec<String> = mode_list.iter().map(|(m, n)| format!("{m}:{n}")).collect();
        println!(
            "  transport (matched records per mode): {}",
            mode_str.join(", ")
        );
        let act_str: Vec<String> = PoiCategory::ALL
            .iter()
            .filter(|c| activities.count(**c) > 0)
            .map(|c| format!("{} {:.0}%", c.label(), activities.share(*c) * 100.0))
            .collect();
        println!("  stop activities: {}", act_str.join(", "));
        let top: Vec<String> = landuse
            .top_k(5)
            .iter()
            .map(|(c, s)| format!("{} {:.1}%", c.code(), s * 100.0))
            .collect();
        println!("  top-5 landuse: {}", top.join(", "));
    }
}
