//! Real-time annotation: feed a GPS stream record by record and receive
//! annotated episodes the moment they close — the paper's §1.2
//! requirement that "annotation data is even required in real-time".
//!
//! Compares the causal (online) stop activities with the end-of-day
//! Viterbi re-decode.
//!
//! Run with: `cargo run --release -p semitri --example realtime`

use semitri::core::line::matcher::MatchParams;
use semitri::core::point::PointParams;
use semitri::core::streaming::{StreamEvent, StreamingAnnotator};
use semitri::prelude::*;

fn main() {
    let dataset = smartphone_users(1, 1, 99);
    let city = &dataset.city;
    let track = &dataset.tracks[0];
    println!("live feed: {} GPS records incoming...", track.len());

    let mut stream = StreamingAnnotator::new(
        city,
        VelocityPolicy::default(),
        MatchParams::default(),
        ModeInferencer::default(),
        PointParams::default(),
    );

    let mut online_stops = Vec::new();
    let mut handle = |event: StreamEvent| match event {
        StreamEvent::Move { episode, route } => {
            let modes: std::collections::BTreeSet<&str> = route
                .iter()
                .filter_map(|e| e.mode.map(|m| m.label()))
                .collect();
            println!(
                "  [{}] MOVE closed: {} records, {} segment runs, modes {:?}",
                episode.span.end,
                episode.record_count(),
                route.len(),
                modes
            );
        }
        StreamEvent::Stop {
            episode,
            annotation,
            region,
        } => {
            println!(
                "  [{}] STOP closed: {:.0} min at {} — activity {} (online estimate)",
                episode.span.end,
                episode.duration() / 60.0,
                region.map(|r| r.label).unwrap_or_else(|| "?".to_string()),
                annotation.category.label()
            );
            online_stops.push(annotation);
        }
    };

    for &record in &track.records {
        for event in stream.push(record) {
            handle(event);
        }
    }
    for event in stream.flush() {
        handle(event);
    }

    // end of day: re-decode with full context
    let offline = stream.finalize();
    let agreement = semitri::core::streaming::online_offline_agreement(&online_stops, &offline);
    println!(
        "\nend-of-day Viterbi re-decode: {} stops, online/offline agreement {:.0}%",
        offline.len(),
        agreement * 100.0
    );
}
