//! Map matching on the Seattle-style benchmark: global algorithm vs the
//! geometric baselines, against ground truth (the paper's Fig. 10 setup).
//!
//! Run with: `cargo run --release -p semitri --example map_matching`

use semitri::core::line::baseline::{BaselineMetric, NearestSegmentMatcher};
use semitri::prelude::*;

fn main() {
    let dataset = seattle_drive(7);
    let track = &dataset.tracks[0];
    let records = &track.records;
    let truth: Vec<Option<u32>> = track.truth.iter().map(|t| t.segment).collect();
    println!(
        "benchmark drive: {} GPS records over {} road segments",
        records.len(),
        dataset.city.roads.segments().len()
    );

    // the paper's global matcher at its tuned operating point
    let spacing = {
        let raw = track.to_raw();
        raw.mean_sampling_interval().unwrap_or(1.0) * 12.0 // ~metres between fixes
    };
    let global = GlobalMapMatcher::new(
        &dataset.city.roads,
        MatchParams {
            radius_m: 2.0 * spacing, // the paper's R = 2 (in point spacings)
            sigma_factor: 0.5,       // σ = 0.5 R
            ..MatchParams::default()
        },
    );
    let matches = global.match_records(records);
    let acc = GlobalMapMatcher::accuracy(&matches, &truth);
    println!(
        "global matcher (R=2 spacings, σ=0.5R): {:.2}% accuracy",
        acc * 100.0
    );

    // baseline 1: local nearest segment with the Eq. 1 distance
    let nearest =
        NearestSegmentMatcher::new(&dataset.city.roads, BaselineMetric::PointSegment, 60.0);
    let m = nearest.match_records(records);
    println!(
        "local nearest (point-segment dist): {:.2}% accuracy",
        GlobalMapMatcher::accuracy(&m, &truth) * 100.0
    );

    // baseline 2: classical perpendicular-distance matching
    let perp = NearestSegmentMatcher::new(&dataset.city.roads, BaselineMetric::Perpendicular, 60.0);
    let m = perp.match_records(records);
    println!(
        "local nearest (perpendicular dist): {:.2}% accuracy",
        GlobalMapMatcher::accuracy(&m, &truth) * 100.0
    );

    // mini sensitivity sweep (full sweep: `experiments fig10`)
    println!("\nsensitivity (accuracy % by R in point spacings, σ = 0.5R):");
    for r in [1.0, 2.0, 3.0, 4.0, 5.0] {
        let matcher = GlobalMapMatcher::new(
            &dataset.city.roads,
            MatchParams {
                radius_m: r * spacing,
                sigma_factor: 0.5,
                ..MatchParams::default()
            },
        );
        let m = matcher.match_records(records);
        println!(
            "  R={r}: {:.2}%",
            GlobalMapMatcher::accuracy(&m, &truth) * 100.0
        );
    }
}
