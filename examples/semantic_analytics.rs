//! Semantic analytics: the full Analytics Layer over a week of annotated
//! people trajectories — meaningful places (clustering), behavioral
//! patterns (sequential mining), mobility statistics, and store-backed
//! aggregate queries.
//!
//! Run with: `cargo run --release -p semitri --example semantic_analytics`

use semitri::analytics::cluster::{dbscan_stops, DbscanParams};
use semitri::analytics::flows::OdMatrix;
use semitri::analytics::patterns::{mine_sequences, SymbolKind};
use semitri::prelude::*;

fn main() {
    let dataset = smartphone_users(3, 7, 7);
    println!(
        "dataset: {} users × 7 days, {} GPS records",
        dataset.object_count(),
        dataset.total_records()
    );

    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let store = SemanticTrajectoryStore::in_memory();

    let mut all_ssts = Vec::new();
    let mut stop_centers = Vec::new();
    let mut stops_per_traj: Vec<std::ops::Range<usize>> = Vec::new();
    let mut mobility = MobilitySummary::default();
    let mut modes = ModeShares::default();

    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());
        mobility.add_trajectory(&out.cleaned);
        let first = stop_centers.len();
        for (i, _) in &out.stop_annotations {
            stop_centers.push(out.episodes[*i].center);
        }
        stops_per_traj.push(first..stop_centers.len());
        for (_, entries) in &out.move_routes {
            modes.add_route(entries);
        }
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: track.trajectory_id,
                object_id: track.object_id,
                record_count: out.cleaned.len() as u64,
            })
            .expect("meta");
        store.put_sst(&out.sst).expect("sst");
        all_ssts.push(out.sst);
    }

    // --- meaningful places ---
    let (clusters, _) = dbscan_stops(&stop_centers, DbscanParams::default());
    println!(
        "\nmeaningful places: {} clusters from {} stops",
        clusters.len(),
        stop_centers.len()
    );
    let mut sorted = clusters.clone();
    sorted.sort_by_key(|c| std::cmp::Reverse(c.len()));
    for c in sorted.iter().take(5) {
        println!(
            "  place at ({:.0}, {:.0}) visited by {} stops",
            c.centroid.x,
            c.centroid.y,
            c.len()
        );
    }

    // --- frequent moves between places (OD matrix) ---
    let (_, assignment) = dbscan_stops(&stop_centers, DbscanParams::default());
    let per_traj: Vec<Vec<Option<usize>>> = stops_per_traj
        .iter()
        .map(|r| assignment[r.clone()].to_vec())
        .collect();
    let od = OdMatrix::from_assignments(&per_traj);
    println!("\nfrequent moves between places:");
    for (from, to, n) in od.top_k(5) {
        println!("  place {from} → place {to}: {n} moves");
    }

    // --- behavioral patterns ---
    let patterns = mine_sequences(&all_ssts, SymbolKind::Semantic, 2, 4, 6);
    println!("\nfrequent behavioral patterns (support ≥ 6 trajectories):");
    for p in patterns.iter().take(8) {
        println!("  [{}] × {}", p.labels.join(" → "), p.support);
    }

    // --- mobility statistics ---
    println!(
        "\nmobility: radius of gyration {:.0} m, mean daily distance {:.1} km over {} days",
        mobility.radius_of_gyration(),
        mobility.mean_distance_m() / 1_000.0,
        mobility.trajectories
    );
    println!(
        "  dominant transport mode: {:?}",
        modes.dominant().map(|m| m.label())
    );
    for mode in TransportMode::ALL {
        let share = modes.share(mode);
        if share > 0.0 {
            println!(
                "    {:<8} {:>5.1}% of annotated move time",
                mode.label(),
                share * 100.0
            );
        }
    }

    // --- store-backed aggregate queries ---
    let stats = store.annotation_statistics();
    println!(
        "\nstore aggregates over {} semantic trajectories:",
        all_ssts.len()
    );
    println!(
        "  trajectories with a metro leg: {}",
        store.ssts_with_mode(TransportMode::Metro).len()
    );
    println!(
        "  trajectories with an item-sale stop: {}",
        store.ssts_with_activity(PoiCategory::ItemSale).len()
    );
    println!(
        "  mode tuples: walk {}, bus {}, metro {}, bicycle {}",
        stats.mode(TransportMode::Walk),
        stats.mode(TransportMode::Bus),
        stats.mode(TransportMode::Metro),
        stats.mode(TransportMode::Bicycle),
    );
}
