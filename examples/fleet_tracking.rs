//! Fleet tracking: annotate a taxi fleet's day and aggregate landuse
//! statistics — the paper's §5.2 vehicle scenario (Fig. 9).
//!
//! Run with: `cargo run --release -p semitri --example fleet_tracking`

use semitri::prelude::*;

fn main() {
    // the Lausanne-taxi preset: 2 taxis, 1 s sampling
    let dataset = lausanne_taxis(2, 1234);
    println!(
        "dataset '{}': {} daily trajectories, {} GPS records (mean dt {:.1}s)",
        dataset.name,
        dataset.tracks.len(),
        dataset.total_records(),
        dataset.mean_sampling_interval()
    );

    let semitri = SeMiTri::new(
        &dataset.city,
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            policy: Box::new(VelocityPolicy::vehicles()),
            ..PipelineConfig::default()
        },
    );

    let mut all = LanduseDistribution::default();
    let mut stops_dist = LanduseDistribution::default();
    let mut moves_dist = LanduseDistribution::default();
    let mut compression = CompressionStats::default();
    let mut stats_total = EpisodeStats::default();

    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());
        let ann = semitri.region_annotator();
        all.merge(&LanduseDistribution::of_trajectory(ann, &out.cleaned));
        stops_dist.merge(&LanduseDistribution::of_episodes(
            ann,
            &out.cleaned,
            &out.episodes,
            EpisodeKind::Stop,
        ));
        moves_dist.merge(&LanduseDistribution::of_episodes(
            ann,
            &out.cleaned,
            &out.episodes,
            EpisodeKind::Move,
        ));
        compression.add(out.cleaned.len(), out.region_tuples.len());
        let s = EpisodeStats::of(&out.episodes);
        stats_total.stops += s.stops;
        stats_total.moves += s.moves;
    }

    println!(
        "\nepisodes: {} stops, {} moves; region compression {:.2}%",
        stats_total.stops,
        stats_total.moves,
        compression.percent()
    );

    println!("\nlanduse distribution (trajectory / move / stop), top 6:");
    for (cat, share) in all.top_k(6) {
        println!(
            "  {:<6} {:<38} {:>6.2}% / {:>6.2}% / {:>6.2}%",
            cat.code(),
            cat.label(),
            share * 100.0,
            moves_dist.share(cat) * 100.0,
            stops_dist.share(cat) * 100.0
        );
    }
    let b = all.share(LanduseCategory::Building) + all.share(LanduseCategory::Transportation);
    println!(
        "\nbuilding + transportation areas cover {:.1}% of taxi records \
         (the paper reports ~83% for real Lausanne taxis)",
        b * 100.0
    );
}
