//! Quickstart: raw GPS → structured semantic trajectory in ~40 lines.
//!
//! Generates a synthetic city, simulates one commuter day (home → metro →
//! office → lunch → home), runs the full SeMiTri pipeline and prints the
//! paper-style semantic triple sequence plus per-layer latencies.
//!
//! Run with: `cargo run --release -p semitri --example quickstart`

use semitri::prelude::*;

fn main() {
    // 1. geographic sources: landuse grid, road network, POIs, regions
    let city = City::generate(CityConfig::default());
    println!(
        "city: {} landuse cells, {} road segments, {} POIs, {} regions",
        city.landuse.len(),
        city.roads.segments().len(),
        city.pois.len(),
        city.regions.len()
    );

    // 2. one simulated day of a smartphone user
    let mut sim = TripSimulator::new(
        &city.roads,
        SimConfig {
            sampling_interval: 5.0,
            ..SimConfig::default()
        },
        42,
        Point::new(2_200.0, 2_400.0),
        Timestamp(7.0 * 3_600.0),
    );
    sim.dwell(1_800.0, true, None); // at home
    sim.travel_to(Point::new(6_800.0, 6_400.0), TransportMode::Metro);
    sim.dwell(3.0 * 3_600.0, true, None); // at the office
    sim.travel_to(Point::new(2_200.0, 2_400.0), TransportMode::Metro);
    sim.dwell(1_800.0, true, None); // home again
    let track = sim.finish(1, 1);
    println!("simulated {} GPS records", track.len());

    // 3. annotate end to end
    let semitri = SeMiTri::new(&city, PipelineConfig::default());
    let out = semitri.annotate(&track.to_raw());

    let stats = EpisodeStats::of(&out.episodes);
    println!(
        "episodes: {} stops, {} moves ({} records after cleaning)",
        stats.stops,
        stats.moves,
        out.cleaned.len()
    );
    println!(
        "region tuples: {} (storage compression {:.1}%)",
        out.region_tuples.len(),
        semitri::core::pipeline::compression_ratio(out.cleaned.len(), out.region_tuples.len())
            * 100.0
    );

    println!("\nsemantic trajectory:\n{}", out.sst.render());

    println!(
        "\nlatency: episodes {:.4}s, landuse join {:.4}s, map match {:.4}s, point {:.4}s",
        out.latency.compute_episode_secs,
        out.latency.landuse_join_secs,
        out.latency.map_match_secs,
        out.latency.point_secs
    );
}
