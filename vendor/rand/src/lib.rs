//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::gen_range` over
//! half-open and inclusive numeric ranges, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only requires determinism for a fixed seed, not a specific
//! stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly into `T`; mirrors `rand`'s
/// `SampleRange<T>` for the numeric types this workspace draws.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Maps a `u64` to a float uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // guard against rounding up to the excluded endpoint
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f32 {
        let r = (self.start as f64)..(self.end as f64);
        r.sample_from(rng) as f32
    }
}

/// Uniform draw from `[0, span)` by widening to `u128`, which keeps the
/// modulo bias below 2^-64 — irrelevant for simulation workloads.
fn sample_u64_below<G: RngCore>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = sample_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; the upstream stream is not reproduced, only the API).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..32).filter(|_| a.gen_range(0u64..1 << 32) == c.gen_range(0u64..1 << 32));
        assert!(same.count() < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(-3..7);
            assert!((-3..7).contains(&i));
            let u = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }
}
