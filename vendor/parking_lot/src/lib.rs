//! Offline drop-in subset of the `parking_lot` API.
//!
//! Wraps the standard-library locks with parking_lot's panic-free
//! interface: `lock()`/`read()`/`write()` return guards directly and a
//! poisoned lock is recovered instead of returning an error.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Mutex guard type.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Shared read guard type.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard type.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not surface poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not surface poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
