//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io; this stand-in keeps
//! the workspace's `benches/` targets compiling and runnable. Timing is
//! a simple best-of-N wall-clock measurement printed per benchmark — no
//! statistics, plots or comparison to saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing harness passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    best: Option<Duration>,
    iters_done: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording the best mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // one warm-up call, then `samples` timed batches
        black_box(f());
        let mut batch = 1u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            self.iters_done += batch;
            let per_iter = elapsed / batch as u32;
            let improved = match self.best {
                Some(b) => per_iter < b,
                None => true,
            };
            if improved {
                self.best = Some(per_iter);
            }
            // grow batches until one takes ~1ms, bounding overhead
            if elapsed < Duration::from_millis(1) && batch < 1 << 20 {
                batch *= 2;
            }
        }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            best: None,
            iters_done: 0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let Some(best) = bencher.best else {
            println!("{label:<40} (no samples)");
            return;
        };
        let secs = best.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / secs)
            }
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / secs)
            }
            _ => String::new(),
        };
        println!("{label:<40} {best:>12.3?}/iter{rate}");
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 5), &5usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(runs > 0);
    }
}
