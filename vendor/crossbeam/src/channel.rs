//! Blocking MPMC channel over a mutex-guarded queue.
//!
//! Semantics follow `crossbeam_channel`'s unbounded channel: any number
//! of cloned senders and receivers, `recv` blocks until a message or
//! disconnection, and dropping the last handle on either side
//! disconnects the channel.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`] when every receiver is gone; owns
/// the unsent message.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Sending half of the channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues a message, failing only if every receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders += 1;
        drop(state);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            self.shared.ready.notify_all();
        }
    }
}

/// Receiving half of the channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Returns a queued message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        match state.queue.pop_front() {
            Some(v) => Ok(v),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking iterator over messages until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers += 1;
        drop(state);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers -= 1;
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_consumes_every_message_once() {
        let (tx, rx) = unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let counted = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<usize> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            all
        })
        .unwrap();
        assert_eq!(counted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errs_after_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errs_without_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
