//! Offline drop-in subset of the `crossbeam` API.
//!
//! Provides the two pieces this workspace uses on top of the standard
//! library: crossbeam-style scoped threads whose panics are collected
//! into a `Result` instead of aborting the scope, and a blocking MPMC
//! channel for fan-out work distribution.

#![forbid(unsafe_code)]

pub mod channel;
pub mod thread;

pub use thread::scope;
