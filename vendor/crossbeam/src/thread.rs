//! Scoped threads with crossbeam's error-reporting semantics.
//!
//! Built on `std::thread::scope`; every spawned closure is wrapped in
//! `catch_unwind` so a panicking worker ends the scope with an `Err`
//! carrying the (first) panic payload, exactly like
//! `crossbeam::thread::scope`, instead of propagating the panic.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

type Payload = Box<dyn Any + Send + 'static>;

/// Scope handle passed to [`scope`]'s closure; spawns threads that may
/// borrow from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    panics: Arc<Mutex<Vec<Payload>>>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        Scope {
            std: self.std,
            panics: Arc::clone(&self.panics),
        }
    }
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> Result<T, Payload> {
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            // the payload was stashed in the scope's panic list; report a
            // generic payload here (crossbeam reports the original)
            Ok(None) => Err(Box::new("scoped thread panicked")),
            Err(p) => Err(p),
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. The closure receives the scope
    /// itself, allowing nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let capture = self.clone();
        let inner = self.std.spawn(
            move || match catch_unwind(AssertUnwindSafe(|| f(&capture))) {
                Ok(v) => Some(v),
                Err(payload) => {
                    capture
                        .panics
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(payload);
                    None
                }
            },
        );
        ScopedJoinHandle { inner }
    }
}

/// Creates a scope for spawning borrowing threads. All spawned threads
/// are joined before this returns; if any panicked, the first payload is
/// returned as `Err`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let panics = Arc::new(Mutex::new(Vec::new()));
    let result = std::thread::scope(|s| {
        let scope = Scope {
            std: s,
            panics: Arc::clone(&panics),
        };
        f(&scope)
    });
    let mut collected = panics.lock().unwrap_or_else(|e| e.into_inner());
    match collected.pop() {
        Some(payload) => Err(payload),
        None => Ok(result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        let payload = r.expect_err("panic must be reported");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }

    #[test]
    fn join_handle_returns_value() {
        let v = scope(|s| {
            let h = s.spawn(|_| 41 + 1);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
