//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: an exact size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s of values from `element` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_follow_spec() {
        let mut rng = StdRng::seed_from_u64(5);
        let exact = vec(0u8..10, 3);
        assert_eq!(exact.new_value(&mut rng).len(), 3);
        let ranged = vec(0u8..10, 2..6);
        for _ in 0..50 {
            let v = ranged.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
