//! The case runner behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The generated inputs did not satisfy a `prop_assume!` precondition;
    /// the case is retried with a fresh seed and does not count.
    Reject,
}

impl TestCaseError {
    /// A property violation with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `f` until `config.cases` cases pass, panicking on the first
/// failing case with its deterministic seed.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 16 + 256;
    while passed < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!("{name}: too many rejected cases ({attempts} attempts for {passed} passes)");
        }
        let seed = base ^ attempts.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(seed);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {passed} failed (rng seed {seed:#x})\n{msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_passing_cases() {
        let mut calls = 0u32;
        run_cases(ProptestConfig::with_cases(10), "counts", |_| {
            calls += 1;
            if calls & 1 == 0 {
                Err(TestCaseError::reject())
            } else {
                Ok(())
            }
        });
        assert_eq!(calls, 19);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic() {
        run_cases(ProptestConfig::with_cases(5), "fails", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
