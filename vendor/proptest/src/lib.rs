//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest its property tests use: the `proptest!`
//! macro, `prop_assert*`/`prop_assume!`, range/tuple/`Just`/regex-string
//! strategies, `prop_map`, `prop_oneof!`, `collection::vec` and
//! `option::of`.
//!
//! The engine generates random cases from a per-test deterministic seed
//! and reports the failing case's seed; it does not shrink failures.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Discards the current case (retried with a fresh seed) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
