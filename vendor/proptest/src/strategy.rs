//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no value tree: strategies draw
/// directly from the runner's RNG and failures are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between several strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over non-empty `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].new_value(rng)
    }
}

macro_rules! impl_numeric_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_numeric_range!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_maps_and_unions_generate() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = (0usize..10, -1.0..1.0f64).prop_map(|(i, x)| i as f64 + x);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((-1.0..10.0).contains(&v));
        }
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
