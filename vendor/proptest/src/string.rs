//! String generation from simple regex patterns.
//!
//! A `&'static str` is a strategy generating strings matching the
//! pattern, as in upstream proptest. Only the subset this workspace uses
//! is parsed: concatenations of character classes with optional `{m,n}`
//! quantifiers, e.g. `"[a-z_]{1,12}"` or `"[\\PC]{0,40}"`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        let parts = parse_pattern(self);
        let mut out = String::new();
        for part in &parts {
            let n = rng.gen_range(part.min..part.max + 1);
            for _ in 0..n {
                let i = rng.gen_range(0..part.chars.len());
                out.push(part.chars[i]);
            }
        }
        out
    }
}

struct Part {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Printable sample alphabet standing in for the `\PC` ("anything but
/// control/unassigned") regex class: ASCII printables plus a few
/// multi-byte code points so codecs see non-trivial UTF-8.
fn printable_alphabet() -> Vec<char> {
    let mut set: Vec<char> = (' '..='~').collect();
    set.extend("àéüßñ€αβ移動軌跡".chars());
    set
}

fn parse_pattern(pattern: &str) -> Vec<Part> {
    let mut chars = pattern.chars().peekable();
    let mut parts = Vec::new();
    while let Some(c) = chars.next() {
        let alphabet = match c {
            '[' => parse_class(&mut chars),
            '\\' => {
                let esc = chars.next().expect("dangling escape");
                escape_alphabet(esc, &mut chars)
            }
            other => vec![other],
        };
        let (min, max) = parse_quantifier(&mut chars);
        parts.push(Part {
            chars: alphabet,
            min,
            max,
        });
    }
    parts
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    while let Some(c) = chars.next() {
        match c {
            ']' => return set,
            '\\' => {
                let esc = chars.next().expect("dangling escape in class");
                set.extend(escape_alphabet(esc, chars));
            }
            c => {
                // range like `a-z` (a trailing `-` is a literal)
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next(); // consume `-`
                    match ahead.peek() {
                        Some(&hi) if hi != ']' => {
                            chars.next();
                            chars.next();
                            set.extend(c..=hi);
                            continue;
                        }
                        _ => {}
                    }
                }
                set.push(c);
            }
        }
    }
    panic!("unterminated character class");
}

fn escape_alphabet(esc: char, chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    match esc {
        // `\PC` / `\P{C}`: any non-control character — approximated by a
        // fixed printable alphabet
        'P' | 'p' => {
            match chars.peek() {
                Some('{') => {
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                    }
                }
                _ => {
                    chars.next();
                }
            }
            printable_alphabet()
        }
        'd' => ('0'..='9').collect(),
        'w' => ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain(['_'])
            .collect(),
        'n' => vec!['\n'],
        't' => vec!['\t'],
        other => vec![other],
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("bad quantifier"),
            hi.trim().parse().expect("bad quantifier"),
        ),
        None => {
            let n = spec.trim().parse().expect("bad quantifier");
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_ranges_and_quantifier() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let s = "[a-z_]{1,12}".new_value(&mut rng);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn unicode_literals_in_class() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let s = "[a-zA-Z0-9 àéü]{0,30}".new_value(&mut rng);
            assert!(s.chars().count() <= 30);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " àéü".contains(c)));
        }
    }

    #[test]
    fn printable_class() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let s = "[\\PC]{0,40}".new_value(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}
