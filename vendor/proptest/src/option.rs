//! `Option` strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Generates `Some` values from `inner` most of the time and `None`
/// occasionally.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_bool(0.8) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_both_variants() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = of(0u8..10);
        let values: Vec<_> = (0..100).map(|_| s.new_value(&mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
    }
}
