//! Dataset-preset integration tests: the synthetic stand-ins must exhibit
//! the qualitative properties the paper reports for the real corpora.

use semitri::prelude::*;

#[test]
fn table1_shape_taxis_vs_milan() {
    let taxis = lausanne_taxis(1, 1);
    let milan = milan_cars(5, 1, 1);
    // sampling frequency: taxis ~1 s, Milan ~40 s (Table 1)
    assert!(taxis.mean_sampling_interval() < 2.0);
    assert!(milan.mean_sampling_interval() > 20.0);
    // Milan has many more objects
    assert!(milan.object_count() > taxis.object_count());
}

#[test]
fn seattle_has_dense_network_and_truth_path() {
    let d = seattle_drive(2);
    // Krumm's benchmark: a large road network relative to the track
    assert!(d.city.roads.segments().len() > 2_000);
    let track = &d.tracks[0];
    // continuous drive: no multi-minute gaps
    let max_gap = track
        .records
        .windows(2)
        .map(|w| w[1].t.since(w[0].t))
        .fold(0.0f64, f64::max);
    assert!(max_gap < 120.0, "max gap {max_gap}");
    // ground truth covers most records
    let with_truth = track.truth.iter().filter(|t| t.segment.is_some()).count();
    assert!(with_truth * 2 > track.len());
}

#[test]
fn people_trajectories_are_heterogeneous() {
    let d = smartphone_users(4, 7, 4);
    // users differ in their weekend movement (personality quirks):
    // compare per-user bounding boxes — at least two users must roam
    // clearly different areas
    let mut extents: Vec<(u64, Rect)> = Vec::new();
    for t in &d.tracks {
        let bbox = t.to_raw().bbox();
        match extents.iter_mut().find(|(u, _)| *u == t.object_id) {
            Some((_, r)) => *r = r.union(&bbox),
            None => extents.push((t.object_id, bbox)),
        }
    }
    assert_eq!(extents.len(), 4);
    let centers: Vec<Point> = extents.iter().map(|(_, r)| r.center()).collect();
    let mut max_sep = 0.0f64;
    for i in 0..centers.len() {
        for j in i + 1..centers.len() {
            max_sep = max_sep.max(centers[i].distance(centers[j]));
        }
    }
    assert!(max_sep > 500.0, "users too similar: {max_sep}");
}

#[test]
fn episode_computation_scales_on_presets() {
    // the §5.3 numbers: stops and moves in the same order of magnitude,
    // both far fewer than GPS records
    let d = smartphone_users(3, 3, 8);
    let policy = VelocityPolicy::default();
    let mut stops = 0usize;
    let mut moves = 0usize;
    let mut records = 0usize;
    for t in &d.tracks {
        let eps = policy.segment(&t.to_raw());
        let st = EpisodeStats::of(&eps);
        stops += st.stops;
        moves += st.moves;
        records += t.len();
    }
    assert!(stops > 0 && moves > 0);
    assert!(stops + moves < records / 10);
    let ratio = stops as f64 / moves as f64;
    assert!(
        (0.2..5.0).contains(&ratio),
        "stop/move ratio {ratio} out of range"
    );
}

#[test]
fn cleaning_preserves_good_data_and_drops_teleports() {
    use semitri::episodes::clean::{gaussian_smooth, remove_speed_outliers};
    let d = lausanne_taxis(1, 21);
    let raw = d.tracks[0].to_raw();
    let cleaned = remove_speed_outliers(raw.records(), 70.0);
    // almost everything survives on simulated data
    assert!(cleaned.len() * 100 >= raw.len() * 95);
    let smoothed = gaussian_smooth(&cleaned, 3.0);
    assert_eq!(smoothed.len(), cleaned.len());
    // smoothing shrinks the path length (noise removal)
    let len_before = RawTrajectory::new(0, 0, cleaned.clone()).path_length();
    let len_after = RawTrajectory::new(0, 0, smoothed).path_length();
    assert!(len_after < len_before);
}
