//! Robustness integration tests: degraded inputs the paper's
//! heterogeneous-data discussion warns about.

use semitri::prelude::*;

fn small_city(poi_count: usize) -> City {
    City::generate(CityConfig {
        bounds: Rect::new(0.0, 0.0, 4_000.0, 4_000.0),
        poi_count,
        region_count: 3,
        seed: 3,
        ..CityConfig::default()
    })
}

#[test]
fn off_network_trajectory_yields_partial_annotation() {
    // a hike far from any road: the line layer matches nothing, but the
    // region layer still annotates and the SST still covers the movement
    let city = small_city(200);
    let semitri = SeMiTri::new(&city, PipelineConfig::default());
    let recs: Vec<GpsRecord> = (0..120)
        .map(|i| {
            GpsRecord::new(
                // the far corner, off the street grid's margin
                Point::new(30.0 + i as f64 * 1.1, 3_980.0),
                Timestamp(i as f64 * 10.0),
            )
        })
        .collect();
    let out = semitri.annotate(&RawTrajectory::new(1, 1, recs));
    assert!(!out.episodes.is_empty());
    // region tuples cover everything (landuse covers the bounds)
    let covered: usize = out.region_tuples.iter().map(|t| t.record_count()).sum();
    assert_eq!(covered, out.cleaned.len());
    // SST still produced, spanning the whole time range
    assert!(!out.sst.is_empty());
}

#[test]
fn city_without_pois_skips_point_layer_gracefully() {
    let city = small_city(0);
    assert!(city.pois.is_empty());
    let semitri = SeMiTri::new(&city, PipelineConfig::default());
    assert!(semitri.point_annotator().is_none());
    // a trajectory with a long dwell still annotates (stop places fall
    // back to landuse regions)
    let mut recs: Vec<GpsRecord> = (0..60)
        .map(|i| GpsRecord::new(Point::new(2_000.0, 2_000.0), Timestamp(i as f64 * 10.0)))
        .collect();
    recs.extend((0..60).map(|i| {
        GpsRecord::new(
            Point::new(2_000.0 + i as f64 * 30.0, 2_000.0),
            Timestamp(600.0 + i as f64 * 10.0),
        )
    }));
    let out = semitri.annotate(&RawTrajectory::new(1, 1, recs));
    assert!(out.stop_annotations.is_empty());
    let stop_tuple = out
        .sst
        .tuples
        .iter()
        .find(|t| t.annotation("mode").is_none())
        .expect("a stop tuple");
    assert!(
        stop_tuple.place.is_some(),
        "stop falls back to a region place"
    );
}

#[test]
fn dirty_feed_with_teleports_and_duplicates_is_cleaned() {
    let city = small_city(100);
    let semitri = SeMiTri::new(&city, PipelineConfig::default());
    let mut recs = Vec::new();
    for i in 0..100 {
        recs.push(GpsRecord::new(
            Point::new(1_000.0 + i as f64 * 12.0, 1_500.0),
            Timestamp(i as f64 * 10.0),
        ));
        if i % 17 == 0 {
            // teleporting outlier at a duplicate timestamp
            recs.push(GpsRecord::new(
                Point::new(100_000.0, -50_000.0),
                Timestamp(i as f64 * 10.0),
            ));
        }
    }
    let out = semitri.annotate(&RawTrajectory::new(1, 1, recs));
    // every outlier dropped
    assert!(out
        .cleaned
        .records()
        .iter()
        .all(|r| r.point.x < 10_000.0 && r.point.y > 0.0));
    assert_eq!(out.cleaned.len(), 100);
}

#[test]
fn single_record_and_empty_trajectories() {
    let city = small_city(100);
    let semitri = SeMiTri::new(&city, PipelineConfig::default());

    let out = semitri.annotate(&RawTrajectory::default());
    assert!(out.sst.is_empty());

    let one = RawTrajectory::new(
        1,
        1,
        vec![GpsRecord::new(Point::new(500.0, 500.0), Timestamp(0.0))],
    );
    let out = semitri.annotate(&one);
    // one record: at most one (stop) episode, never a panic
    assert!(out.episodes.len() <= 1);
}

#[test]
fn zero_duration_dwell_and_monotone_sst() {
    // bursts of identical timestamps at episode boundaries must not panic
    // or produce reversed spans
    let city = small_city(100);
    let semitri = SeMiTri::new(&city, PipelineConfig::default());
    let mut recs = Vec::new();
    let mut t = 0.0;
    for i in 0..200 {
        recs.push(GpsRecord::new(
            Point::new(800.0 + (i / 2) as f64 * 15.0, 900.0),
            Timestamp(t),
        ));
        if i % 2 == 1 {
            t += 10.0;
        }
    }
    let out = semitri.annotate(&RawTrajectory::new(1, 1, recs));
    for t in &out.sst.tuples {
        assert!(t.span.duration() >= 0.0);
    }
    for w in out.sst.tuples.windows(2) {
        assert!(w[0].span.start.0 <= w[1].span.start.0);
    }
}

#[test]
fn streaming_handles_out_of_coverage_feed() {
    use semitri::core::line::matcher::MatchParams;
    use semitri::core::point::PointParams;
    use semitri::core::streaming::StreamingAnnotator;

    let city = small_city(100);
    let mut stream = StreamingAnnotator::new(
        &city,
        VelocityPolicy::default(),
        MatchParams::default(),
        ModeInferencer::default(),
        PointParams::default(),
    );
    // feed far outside the city: no roads, no POIs nearby
    let mut events = Vec::new();
    for i in 0..300 {
        let moving = (100..200).contains(&i);
        let x = if moving {
            50_000.0 + (i - 100) as f64 * 20.0
        } else if i < 100 {
            50_000.0
        } else {
            52_000.0
        };
        events.extend(stream.push(GpsRecord::new(
            Point::new(x, 50_000.0),
            Timestamp(i as f64 * 10.0),
        )));
    }
    events.extend(stream.flush());
    // it must emit episodes without panicking, with empty routes off-map
    assert!(!events.is_empty());
    for e in events {
        if let semitri::core::streaming::StreamEvent::Move { route, .. } = e {
            assert!(route.is_empty(), "no roads exist out there");
        }
    }
}
