//! Integration suite for the sharded annotation server.
//!
//! Boots real servers on ephemeral ports and talks to them over raw
//! `TcpStream`s, asserting the guarantees the server claims:
//!
//! * `POST /annotate` is byte-identical to `semitri-cli annotate` for the
//!   same preset and seed;
//! * malformed or truncated HTTP gets a 4xx (or a silent close) and never
//!   poisons a worker — the very next request on a fresh connection works;
//! * LRU session churn keeps the `server.sessions` gauge consistent with
//!   the opened/evicted/flushed counters;
//! * queue bounds surface as HTTP 429 backpressure.

use semitri::prelude::*;
use semitri::server::sessions::SessionLimits;
use semitri::server::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// Shared never-set shutdown flag: test servers live until process exit.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Boots a `taxis`-preset (seed 42) server on an ephemeral port — the
/// same pipeline construction as `semitri-cli serve taxis`, which is what
/// byte-identity with `semitri-cli annotate taxis` depends on. Leaks the
/// server: tests are short-lived processes.
fn boot(limits: SessionLimits) -> SocketAddr {
    let city = lausanne_taxis(1, 42).city;
    let make_config = || PipelineConfig {
        mode: ModeInferencer {
            allow_car: true,
            ..ModeInferencer::default()
        },
        policy: Box::new(VelocityPolicy::vehicles()),
        ..PipelineConfig::default()
    };
    let server: &'static Server = Box::leak(Box::new(Server::new(
        city,
        make_config,
        VelocityPolicy::vehicles(),
        ServeConfig {
            workers: 2,
            sessions: limits,
            ..ServeConfig::default()
        },
    )));
    // binding 127.0.0.1:0 can transiently fail under parallel test
    // processes churning through the ephemeral range; retry with a fresh
    // port a bounded number of times instead of failing the suite
    let mut listener = None;
    for attempt in 0..10u64 {
        match TcpListener::bind("127.0.0.1:0") {
            Ok(l) => {
                listener = Some(l);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20 * (attempt + 1))),
        }
    }
    let listener = listener.expect("could not bind an ephemeral port after 10 attempts");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = server.run(listener, &SHUTDOWN);
    });
    addr
}

/// Bounded-retry connect: between our bind and our connect another test
/// process can churn the port table hard enough for a connect to be
/// transiently refused. Retrying with a fresh socket a few times keeps
/// those races out of the suite; a server that is really gone still fails
/// after the bound.
fn connect(addr: SocketAddr) -> TcpStream {
    let mut last = None;
    for attempt in 0..10u64 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                return s;
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20 * (attempt + 1)));
            }
        }
    }
    panic!("could not connect to {addr} after 10 attempts: {last:?}");
}

/// One `Connection: close` request; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = connect(addr);
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len(),
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Reads `name`'s value out of a `/metrics` JSON-lines body.
fn metric(metrics_body: &str, name: &str) -> i64 {
    let needle = format!("\"name\":\"{name}\",\"value\":");
    for line in metrics_body.lines() {
        if let Some(idx) = line.find(&needle) {
            let rest = &line[idx + needle.len()..];
            let end = rest.find(['}', ',']).unwrap_or(rest.len());
            return rest[..end].parse().unwrap();
        }
    }
    panic!("metric {name} not found in:\n{metrics_body}");
}

/// Renders a simulated track as the JSON-lines wire feed.
fn feed_body(track: &semitri::data::sim::SimulatedTrack) -> String {
    let mut body = format!(
        "{{\"object_id\":{},\"trajectory_id\":{}}}\n",
        track.object_id, track.trajectory_id
    );
    for r in &track.records {
        body.push_str(&format!(
            "{{\"x\":{},\"y\":{},\"t\":{}}}\n",
            r.point.x, r.point.y, r.t.0
        ));
    }
    body
}

/// A short fixed feed for session tests (one stop inside the city).
fn small_feed_records(n: usize) -> String {
    (0..n)
        .map(|i| {
            format!(
                "{{\"x\":{},\"y\":2000,\"t\":{}}}\n",
                2_000.0 + i as f64 * 5.0,
                28_800.0 + i as f64 * 30.0
            )
        })
        .collect()
}

#[test]
fn annotate_is_byte_identical_to_the_cli() {
    let addr = boot(SessionLimits::default());
    // same dataset the server was booted on; annotate a real track
    let dataset = lausanne_taxis(1, 42);
    let track = &dataset.tracks[0];
    let body = feed_body(track);

    let (status, via_http) = request(addr, "POST", "/annotate", &body);
    assert_eq!(status, 200, "{via_http}");
    assert!(via_http.contains("\"type\":\"summary\""));

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_semitri-cli"))
        .args(["annotate", "taxis", "42"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(body.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let via_cli = String::from_utf8(out.stdout).unwrap();

    assert_eq!(via_http, via_cli, "HTTP and CLI annotation bodies diverged");
}

#[test]
fn malformed_and_truncated_requests_never_poison_a_worker() {
    let addr = boot(SessionLimits::default());

    // garbage request line → 400
    let mut s = connect(addr);
    s.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (status, _) = parse_response(&raw);
    assert_eq!(status, 400);

    // oversized declared body → 413 without the server reading it
    let mut s = connect(addr);
    s.write_all(b"POST /annotate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (status, _) = parse_response(&raw);
    assert_eq!(status, 413);

    // truncated body: promise 100 bytes, send 5, hang up mid-request
    let mut s = connect(addr);
    s.write_all(b"POST /annotate HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")
        .unwrap();
    drop(s);

    // feed that is valid HTTP but invalid JSON → 422, connection fine
    let (status, body) = request(addr, "POST", "/annotate", "this is not json\n");
    assert_eq!(status, 422, "{body}");

    // wrong methods / unknown paths → 405 / 404
    assert_eq!(request(addr, "POST", "/healthz", "").0, 405);
    assert_eq!(request(addr, "GET", "/annotate", "").0, 405);
    assert_eq!(request(addr, "GET", "/admin/update", "").0, 405);
    assert_eq!(request(addr, "GET", "/no/such/path", "").0, 404);
    assert_eq!(request(addr, "PATCH", "/session/alice", "").0, 404);

    // after all of the above, the workers still serve real traffic
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.starts_with("ok gen="), "{body}");
    let dataset = lausanne_taxis(1, 42);
    let (status, body) = request(addr, "POST", "/annotate", &feed_body(&dataset.tracks[0]));
    assert_eq!(status, 200, "{body}");
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(metric(&metrics, "server.responses_4xx") >= 5);
    assert_eq!(metric(&metrics, "server.responses_5xx"), 0);
}

#[test]
fn session_lifecycle_over_http() {
    let addr = boot(SessionLimits::default());
    let push = small_feed_records(6);

    let (status, _) = request(addr, "POST", "/session/alice/push", &push);
    assert_eq!(status, 200);
    let (status, body) = request(addr, "POST", "/session/alice/flush", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"type\":\"cleaning\""), "{body}");
    assert!(body.contains("\"type\":\"end\",\"records\":6"), "{body}");

    // flush is terminal: the session is gone
    let (status, _) = request(addr, "POST", "/session/alice/flush", "");
    assert_eq!(status, 404);
    // flushing a session that never existed is the same 404
    let (status, _) = request(addr, "POST", "/session/nobody/flush", "");
    assert_eq!(status, 404);
    // a later push for the same user starts a fresh session
    let (status, _) = request(addr, "POST", "/session/alice/push", &push);
    assert_eq!(status, 200);

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(metric(&metrics, "server.sessions_opened"), 2);
    assert_eq!(metric(&metrics, "server.sessions_flushed"), 1);
    assert_eq!(metric(&metrics, "server.sessions"), 1);
}

#[test]
fn lru_churn_keeps_the_session_gauge_consistent() {
    // one shard, room for 3 sessions: heavy churn across 12 users
    let addr = boot(SessionLimits {
        shards: 1,
        max_sessions: 3,
        ..SessionLimits::default()
    });
    let push = small_feed_records(4);
    for u in 0..12 {
        let (status, _) = request(addr, "POST", &format!("/session/u{u}/push"), &push);
        assert_eq!(status, 200);
    }
    // flush the most recent user (must still be live) and a long-evicted one
    let (status, _) = request(addr, "POST", "/session/u11/flush", "");
    assert_eq!(status, 200);
    let (status, _) = request(addr, "POST", "/session/u0/flush", "");
    assert_eq!(status, 404);

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    let opened = metric(&metrics, "server.sessions_opened");
    let evicted = metric(&metrics, "server.sessions_evicted");
    let flushed = metric(&metrics, "server.sessions_flushed");
    let gauge = metric(&metrics, "server.sessions");
    assert_eq!(opened, 12);
    assert_eq!(flushed, 1);
    assert_eq!(evicted, 9, "cap 3 across 12 opens");
    assert_eq!(gauge, opened - evicted - flushed);
    assert_eq!(gauge, 2);
}

#[test]
fn queue_bounds_surface_as_429_backpressure() {
    let addr = boot(SessionLimits {
        shards: 1,
        max_sessions: 8,
        max_push_records: 5,
        max_session_records: 8,
    });
    // a single push over the per-push bound
    let (status, _) = request(addr, "POST", "/session/bob/push", &small_feed_records(6));
    assert_eq!(status, 429);
    // cumulative bound: 5 then 4 would exceed 8
    let (status, _) = request(addr, "POST", "/session/bob/push", &small_feed_records(5));
    assert_eq!(status, 200);
    let (status, _) = request(addr, "POST", "/session/bob/push", &small_feed_records(4));
    assert_eq!(status, 429);
    // flush drains the session; pushing works again
    let (status, _) = request(addr, "POST", "/session/bob/flush", "");
    assert_eq!(status, 200);
    let (status, _) = request(addr, "POST", "/session/bob/push", &small_feed_records(4));
    assert_eq!(status, 200);

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(metric(&metrics, "server.backpressure_rejections"), 2);
    assert_eq!(metric(&metrics, "server.sessions"), 1);
}

/// One `GET /healthz` round trip on an already-open keep-alive connection;
/// returns the response head. An EOF before a full head is an error (the
/// caller decides whether that is a setup race or a broken keep-alive).
fn keep_alive_roundtrip(
    stream: &mut TcpStream,
    reader: &mut std::io::BufReader<TcpStream>,
) -> std::io::Result<String> {
    stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")?;
    // read status line + headers, then a Content-Length-delimited body
    let mut head = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if std::io::BufRead::read_line(reader, &mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = v;
        }
        let done = line == "\r\n";
        head.push_str(&line);
        if done {
            break;
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body)?;
    assert!(body.starts_with(b"ok gen="), "{:?}", body);
    Ok(head)
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let addr = boot(SessionLimits::default());
    // The same bind-to-connect race as `request` can kill the connection
    // before the FIRST response arrives; that is a setup race, not a
    // keep-alive violation, so retry it on a fresh connection a bounded
    // number of times. A failure after the first response means the
    // server really dropped a keep-alive connection — always fatal.
    let mut attempt = 0;
    'fresh_connection: loop {
        attempt += 1;
        let mut stream = connect(addr);
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        for i in 0..3 {
            match keep_alive_roundtrip(&mut stream, &mut reader) {
                Ok(head) => {
                    assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
                    assert!(head.contains("Connection: keep-alive\r\n"), "{head}");
                }
                Err(e) if i == 0 && attempt < 5 => {
                    eprintln!("keep-alive setup race (attempt {attempt}): {e}");
                    continue 'fresh_connection;
                }
                Err(e) => panic!("keep-alive request {i} failed: {e}"),
            }
        }
        break;
    }
}

#[test]
fn admin_update_swaps_generations_without_downtime() {
    let addr = boot(SessionLimits::default());
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok gen=0\n"));

    // a malformed mutation body is rejected without publishing anything
    let (status, _) = request(addr, "POST", "/admin/update", "this is not a mutation\n");
    assert_eq!(status, 422);
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok gen=0\n"));

    // a real mutation batch publishes generation 1
    let update = concat!(
        "{\"op\":\"add_poi\",\"x\":3000,\"y\":3000,\"category\":\"item sale\",\"name\":\"kiosk\"}\n",
        "{\"op\":\"add_road\",\"x1\":2800,\"y1\":2800,\"x2\":3200,\"y2\":2800,\"class\":\"street\"}\n",
    );
    let (status, body) = request(addr, "POST", "/admin/update", update);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":1"), "{body}");
    assert!(body.contains("\"applied\":2"), "{body}");

    // the new generation is visible on every surface
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok gen=1\n"));
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(metric(&metrics, "server.generation"), 1);
    assert_eq!(metric(&metrics, "server.updates_applied"), 2);

    // annotation keeps working against the swapped-in generation
    let dataset = lausanne_taxis(1, 42);
    let (status, body) = request(addr, "POST", "/annotate", &feed_body(&dataset.tracks[0]));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"type\":\"summary\""));
}
