//! Cross-crate tests of the three annotation layers against simulator
//! ground truth.

use semitri::core::line::baseline::{BaselineMetric, NearestSegmentMatcher};
use semitri::prelude::*;

#[test]
fn map_matching_beats_90_percent_on_clean_drive() {
    let dataset = seattle_drive(3);
    let track = &dataset.tracks[0];
    let truth: Vec<Option<u32>> = track.truth.iter().map(|t| t.segment).collect();

    let matcher = GlobalMapMatcher::new(
        &dataset.city.roads,
        MatchParams {
            radius_m: 25.0,
            sigma_factor: 0.5,
            ..MatchParams::default()
        },
    );
    let matches = matcher.match_records(&track.records);
    let acc = GlobalMapMatcher::accuracy(&matches, &truth);
    assert!(acc > 0.9, "accuracy {acc}");
}

#[test]
fn global_matcher_at_least_as_good_as_local_baseline() {
    let dataset = seattle_drive(11);
    let track = &dataset.tracks[0];
    let truth: Vec<Option<u32>> = track.truth.iter().map(|t| t.segment).collect();

    let global = GlobalMapMatcher::new(
        &dataset.city.roads,
        MatchParams {
            radius_m: 25.0,
            sigma_factor: 0.5,
            ..MatchParams::default()
        },
    );
    let g_acc = GlobalMapMatcher::accuracy(&global.match_records(&track.records), &truth);

    let local = NearestSegmentMatcher::new(&dataset.city.roads, BaselineMetric::PointSegment, 60.0);
    let l_acc = GlobalMapMatcher::accuracy(&local.match_records(&track.records), &truth);

    let perp = NearestSegmentMatcher::new(&dataset.city.roads, BaselineMetric::Perpendicular, 60.0);
    let p_acc = GlobalMapMatcher::accuracy(&perp.match_records(&track.records), &truth);

    assert!(
        g_acc + 0.02 >= l_acc,
        "global {g_acc} should not trail local {l_acc}"
    );
    assert!(
        g_acc > p_acc,
        "global {g_acc} must beat perpendicular {p_acc}"
    );
}

#[test]
fn region_layer_annotates_both_landuse_and_named_regions() {
    let city = City::generate(CityConfig {
        bounds: Rect::new(0.0, 0.0, 5_000.0, 5_000.0),
        poi_count: 300,
        region_count: 6,
        seed: 5,
        ..CityConfig::default()
    });
    let landuse = RegionAnnotator::from_landuse(&city.landuse);
    let named = RegionAnnotator::from_named_regions(&city.regions);

    // walk through the campus region (regions[0])
    let campus_center = city.regions[0].polygon.centroid();
    let recs: Vec<GpsRecord> = (0..20)
        .map(|i| {
            GpsRecord::new(
                campus_center.offset(i as f64, 0.0),
                Timestamp(i as f64 * 10.0),
            )
        })
        .collect();
    let traj = RawTrajectory::new(1, 1, recs);

    let landuse_tuples = landuse.annotate_trajectory(&traj);
    assert!(!landuse_tuples.is_empty());
    assert!(landuse_tuples.iter().all(|t| t.category.is_some()));

    let named_tuples = named.annotate_trajectory(&traj);
    assert!(!named_tuples.is_empty());
    assert!(named_tuples[0].place.label.contains("campus"));
}

#[test]
fn hmm_beats_nearest_poi_baseline_in_dense_areas() {
    use semitri::core::point::baseline::NearestPoiAnnotator;
    use semitri::core::point::{PointAnnotator as PA, PointParams};

    // dense mixed scene: target category POIs slightly outnumbered locally
    // by a noisy mix, so the nearest POI is often the wrong category while
    // density favors the truth
    let bounds = Rect::new(0.0, 0.0, 2_000.0, 2_000.0);
    let mut pois = Vec::new();
    let mut id = 0u64;
    // a shopping street: many ItemSale POIs + scattered distractors
    for i in 0..30 {
        pois.push(Poi {
            id,
            point: Point::new(
                500.0 + (i % 10) as f64 * 15.0,
                500.0 + (i / 10) as f64 * 15.0,
            ),
            category: PoiCategory::ItemSale,
            name: format!("shop {id}"),
        });
        id += 1;
    }
    for i in 0..6 {
        pois.push(Poi {
            id,
            point: Point::new(505.0 + i as f64 * 25.0, 498.0),
            category: PoiCategory::Services,
            name: format!("atm {id}"),
        });
        id += 1;
    }
    let set = PoiSet::new(pois);

    let hmm = PA::new(&set, bounds, PointParams::default()).unwrap();
    let baseline = NearestPoiAnnotator::new(&set, bounds, 50.0, 150.0);

    // stops along the shopping street whose nearest POI is an ATM
    let stops: Vec<Point> = (0..5)
        .map(|i| Point::new(506.0 + i as f64 * 25.0, 497.0))
        .collect();
    let hmm_out = hmm.annotate_stops(&stops);
    let base_out = baseline.annotate_stops(&stops);

    let hmm_correct = hmm_out
        .iter()
        .filter(|a| a.category == PoiCategory::ItemSale)
        .count();
    let base_correct = base_out
        .iter()
        .filter(|a| **a == Some(PoiCategory::ItemSale))
        .count();
    assert!(
        hmm_correct > base_correct,
        "hmm {hmm_correct}/5 vs baseline {base_correct}/5"
    );
    assert_eq!(hmm_correct, 5);
}

#[test]
fn stop_activity_matches_simulated_truth_majority() {
    let dataset = milan_cars(4, 1, 17);
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());

    let mut agree = 0usize;
    let mut total = 0usize;
    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());
        // truth: stop category by time lookup
        let mut truth_by_time: std::collections::HashMap<u64, PoiCategory> =
            std::collections::HashMap::new();
        for (r, t) in track.records.iter().zip(&track.truth) {
            if let Some(c) = t.stop_category {
                truth_by_time.insert(r.t.0.to_bits(), c);
            }
        }
        for (ep_idx, ann) in &out.stop_annotations {
            let ep = &out.episodes[*ep_idx];
            // majority truth category over the episode's records
            let mut counts = [0usize; 5];
            for r in &out.cleaned.records()[ep.start..ep.end] {
                if let Some(&c) = truth_by_time.get(&r.t.0.to_bits()) {
                    counts[c.ordinal()] += 1;
                }
            }
            let Some((best, &n)) = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, &n)| n)
                .filter(|&(_, &n)| n > 0)
            else {
                continue;
            };
            let _ = n;
            total += 1;
            if PoiCategory::ALL[best] == ann.category {
                agree += 1;
            }
        }
    }
    assert!(total >= 4, "too few truth-labeled stops: {total}");
    let rate = agree as f64 / total as f64;
    // dense synthetic POIs make this hard; the HMM should still beat the
    // 20% random-guess floor by a wide margin
    assert!(rate > 0.4, "stop category agreement {rate:.2} over {total}");
}
