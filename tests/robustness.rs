//! Property harness: every annotation path must survive degraded GPS
//! feeds produced by the seeded [`FaultInjector`].
//!
//! The strategies below draw random fault stacks (dropout, noise bursts,
//! teleports, duplicate/conflicting timestamps, out-of-order delivery,
//! stuck clocks, non-finite coordinates, resampling) and apply them to a
//! plausible random walk. The invariants checked:
//!
//! * the sequential path ([`SeMiTri::try_annotate_feed`]) never panics;
//!   on success its episodes exactly partition the cleaned record range,
//!   the cleaned trajectory is strictly time-increasing, and the
//!   [`CleaningReport`] accounting identity holds;
//! * the batch path agrees with the sequential path slot for slot, and a
//!   feed that is irrecoverable sequentially fails its batch slot with
//!   [`PipelineErrorKind::MalformedFeed`] without poisoning the batch;
//! * the streaming path accepts the same feeds push by push, keeps its
//!   accepted records strictly ordered, and its emitted episodes exactly
//!   partition `[0, record_count())`;
//! * the injector itself is a pure function of `(seed, faults, input)`.

use proptest::prelude::*;
use semitri::core::line::matcher::MatchParams;
use semitri::core::point::PointParams;
use semitri::core::streaming::{StreamEvent, StreamingAnnotator};
use semitri::prelude::*;
use std::sync::OnceLock;

fn city() -> &'static City {
    static CITY: OnceLock<City> = OnceLock::new();
    CITY.get_or_init(|| City::generate(CityConfig::default()))
}

fn semitri() -> &'static SeMiTri {
    static PIPELINE: OnceLock<SeMiTri> = OnceLock::new();
    PIPELINE.get_or_init(|| SeMiTri::new(city(), PipelineConfig::default()))
}

/// A plausible base feed: a bounded random walk at pedestrian-to-vehicle
/// speeds with mildly irregular sampling, entirely inside the city.
fn base_records_strategy() -> impl Strategy<Value = Vec<GpsRecord>> {
    (
        (1_000.0..7_000.0f64, 1_000.0..7_000.0f64),
        proptest::collection::vec((-25.0..25.0f64, -25.0..25.0f64, 1.0..20.0f64), 20..160),
    )
        .prop_map(|((x0, y0), steps)| {
            let (mut x, mut y, mut t) = (x0, y0, 28_800.0);
            let mut records = Vec::with_capacity(steps.len() + 1);
            records.push(GpsRecord::new(Point::new(x, y), Timestamp(t)));
            for (dx, dy, dt) in steps {
                x = (x + dx).clamp(200.0, 7_800.0);
                y = (y + dy).clamp(200.0, 7_800.0);
                t += dt;
                records.push(GpsRecord::new(Point::new(x, y), Timestamp(t)));
            }
            records
        })
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0.0..0.4f64).prop_map(|rate| Fault::Dropout { rate }),
        (1.0..40.0f64, 0.05..0.6f64).prop_map(|(sigma, rate)| Fault::Noise { sigma, rate }),
        (1usize..5, 500.0..5_000.0f64)
            .prop_map(|(count, distance)| Fault::Teleport { count, distance }),
        (0.0..0.35f64).prop_map(|rate| Fault::Duplicate { rate }),
        (0.0..0.25f64, 10.0..600.0f64)
            .prop_map(|(rate, offset_m)| Fault::Conflict { rate, offset_m }),
        (0.0..0.35f64).prop_map(|rate| Fault::OutOfOrder { rate }),
        (0.0..0.3f64).prop_map(|rate| Fault::StuckClock { rate }),
        (0.0..0.15f64).prop_map(|rate| Fault::NonFinite { rate }),
        (4.0..45.0f64).prop_map(|interval| Fault::Resample { interval }),
    ]
}

fn injector_strategy() -> impl Strategy<Value = FaultInjector> {
    (
        0u64..u64::MAX,
        proptest::collection::vec(fault_strategy(), 0..4),
    )
        .prop_map(|(seed, faults)| {
            faults
                .into_iter()
                .fold(FaultInjector::new(seed), |inj, f| inj.with(f))
        })
}

/// NaN-tolerant record identity: `NonFinite` faults inject NaN, which is
/// never `==` itself, so determinism is checked on the raw bit patterns.
fn bit_patterns(records: &[GpsRecord]) -> Vec<(u64, u64, u64)> {
    records
        .iter()
        .map(|r| (r.point.x.to_bits(), r.point.y.to_bits(), r.t.0.to_bits()))
        .collect()
}

/// Episodes must exactly partition `[0, n)` in order.
fn assert_partition(episodes: &[Episode], n: usize) -> Result<(), TestCaseError> {
    let mut last_end = 0usize;
    for ep in episodes {
        prop_assert_eq!(ep.start, last_end, "episode gap/overlap at {}", ep.start);
        prop_assert!(ep.end > ep.start, "empty episode at {}", ep.start);
        last_end = ep.end;
    }
    prop_assert_eq!(last_end, n, "episodes do not cover the record range");
    Ok(())
}

fn offline_report_holds(report: &CleaningReport) -> Result<(), TestCaseError> {
    // offline preprocessing repairs reorderings (stable sort) rather than
    // dropping them, so `reordered` does not appear in the partition
    prop_assert_eq!(
        report.input,
        report.kept
            + report.dropped_nonfinite
            + report.deduped
            + report.dropped_conflicts
            + report.dropped_outliers
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sequential_path_survives_any_fault_stack(
        base in base_records_strategy(),
        injector in injector_strategy(),
    ) {
        let degraded = injector.apply(&base);
        let feed = GpsFeed::new(1, 1, degraded.clone());

        match semitri().try_annotate_feed(&feed) {
            Ok(out) => {
                let cleaned = out.cleaned.records();
                prop_assert!(cleaned.iter().all(|r| r.is_finite()));
                prop_assert!(cleaned.windows(2).all(|w| w[1].t.0 > w[0].t.0));
                assert_partition(&out.episodes, cleaned.len())?;
                offline_report_holds(&out.cleaning)?;
                prop_assert_eq!(out.cleaning.input as usize, degraded.len());
                prop_assert_eq!(out.cleaning.kept as usize, cleaned.len());
            }
            Err(FeedError::NoValidRecords { total }) => {
                // only legal when the degradation wiped out every fix
                prop_assert_eq!(total, degraded.len());
                prop_assert!(degraded.iter().all(|r| !r.is_finite()));
            }
        }
    }

    #[test]
    fn batch_path_agrees_with_sequential(
        bases in proptest::collection::vec(base_records_strategy(), 1..4),
        injector in injector_strategy(),
    ) {
        let feeds: Vec<GpsFeed> = bases
            .iter()
            .enumerate()
            .map(|(i, base)| {
                let id = i as u64 + 1;
                GpsFeed::new(id, id, injector.apply_stream(id, base))
            })
            .collect();

        let batch = BatchAnnotator::new(semitri()).with_threads(2);
        let out = batch.annotate_feeds(&feeds);
        prop_assert_eq!(out.results.len(), feeds.len());

        for (feed, slot) in feeds.iter().zip(&out.results) {
            match (semitri().try_annotate_feed(feed), slot) {
                (Ok(want), Ok(got)) => {
                    prop_assert_eq!(got.cleaned.records(), want.cleaned.records());
                    prop_assert_eq!(&got.episodes, &want.episodes);
                    prop_assert_eq!(got.sst.len(), want.sst.len());
                    prop_assert_eq!(got.cleaning, want.cleaning);
                }
                (Err(want), Err(got)) => {
                    prop_assert_eq!(got.kind, PipelineErrorKind::MalformedFeed);
                    prop_assert!(got.message.contains(&want.to_string()));
                }
                (want, got) => prop_assert!(
                    false,
                    "paths disagree for trajectory {}: sequential {:?}, batch {:?}",
                    feed.trajectory_id,
                    want.map(|_| "ok"),
                    got.as_ref().map(|_| "ok")
                ),
            }
        }
    }

    #[test]
    fn streaming_path_survives_any_fault_stack(
        base in base_records_strategy(),
        injector in injector_strategy(),
    ) {
        let degraded = injector.apply(&base);

        let mut stream = StreamingAnnotator::new(
            city(),
            VelocityPolicy::default(),
            MatchParams::default(),
            ModeInferencer::default(),
            PointParams::default(),
        );
        let mut events = Vec::new();
        for &r in &degraded {
            events.extend(stream.push(r));
        }
        events.extend(stream.flush());

        let report = *stream.cleaning_report();
        prop_assert_eq!(report.input as usize, degraded.len());
        prop_assert_eq!(report.kept as usize, stream.record_count());
        // online cleaning cannot rewrite the past: reordered fixes are
        // dropped, so they join the partition on the right-hand side
        prop_assert_eq!(
            report.input,
            report.kept + report.dropped() + report.deduped + report.reordered
        );

        let episodes: Vec<Episode> = events
            .into_iter()
            .map(|e| match e {
                StreamEvent::Move { episode, .. } | StreamEvent::Stop { episode, .. } => episode,
            })
            .collect();
        assert_partition(&episodes, stream.record_count())?;
    }

    #[test]
    fn injector_is_deterministic_and_composition_is_stable(
        base in base_records_strategy(),
        injector in injector_strategy(),
        extra in fault_strategy(),
    ) {
        prop_assert_eq!(
            bit_patterns(&injector.apply(&base)),
            bit_patterns(&injector.apply(&base))
        );
        // per-fault salted draws: composing another fault on top must not
        // re-roll what the existing stack already produced upstream of it
        let n_before = injector.faults().len();
        let extended = injector.clone().with(extra);
        prop_assert_eq!(extended.faults().len(), n_before + 1);
        prop_assert_eq!(
            bit_patterns(&extended.apply(&base)),
            bit_patterns(&extended.apply(&base))
        );
    }
}

/// A feed whose every fix is corrupt is an error on the sequential path
/// and a `MalformedFeed` slot on the batch path — never a panic or abort.
#[test]
fn irrecoverable_feed_fails_cleanly_on_every_path() {
    let junk: Vec<GpsRecord> = (0..10)
        .map(|i| GpsRecord::new(Point::new(f64::NAN, f64::INFINITY), Timestamp(i as f64)))
        .collect();

    let feed = GpsFeed::new(9, 9, junk.clone());
    let err = semitri().try_annotate_feed(&feed).unwrap_err();
    assert!(matches!(err, FeedError::NoValidRecords { total: 10 }));

    let good = GpsFeed::new(
        1,
        1,
        (0..60)
            .map(|i| GpsRecord::new(Point::new(2_000.0 + i as f64, 2_000.0), Timestamp(i as f64)))
            .collect(),
    );
    let out = BatchAnnotator::new(semitri())
        .with_threads(2)
        .annotate_feeds(&[good, feed]);
    assert!(out.results[0].is_ok());
    let slot = out.results[1].as_ref().unwrap_err();
    assert_eq!(slot.kind, PipelineErrorKind::MalformedFeed);
    assert_eq!(slot.trajectory_id, 9);

    // streaming: the same junk is rejected at the door, fix by fix
    let mut stream = StreamingAnnotator::new(
        city(),
        VelocityPolicy::default(),
        MatchParams::default(),
        ModeInferencer::default(),
        PointParams::default(),
    );
    for &r in &junk {
        assert!(stream.push(r).is_empty());
    }
    assert!(stream.flush().is_empty());
    assert_eq!(stream.record_count(), 0);
    assert_eq!(stream.cleaning_report().dropped_nonfinite, 10);
}
