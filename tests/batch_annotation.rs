//! Integration test of the multi-threaded batch annotation engine
//! through the public `semitri` facade, including the CLI's `--threads`
//! flag.

use semitri::prelude::*;
use std::process::Command;

fn small_dataset() -> semitri::data::presets::Dataset {
    smartphone_users(4, 1, 7)
}

#[test]
fn pooled_batch_matches_sequential_annotation() {
    let dataset = small_dataset();
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();

    let sequential: Vec<PipelineOutput> = raws.iter().map(|r| semitri.annotate(r)).collect();
    let pooled = BatchAnnotator::new(&semitri)
        .with_threads(4)
        .annotate_all(&raws);

    assert_eq!(pooled.results.len(), sequential.len());
    assert_eq!(pooled.summary.failures, 0);
    for (seq, batch) in sequential.iter().zip(&pooled.results) {
        let batch = batch.as_ref().expect("no failures");
        assert_eq!(seq.episodes, batch.episodes);
        assert_eq!(seq.region_tuples, batch.region_tuples);
        assert_eq!(seq.move_routes, batch.move_routes);
        assert_eq!(seq.stop_annotations, batch.stop_annotations);
        assert_eq!(seq.sst, batch.sst);
    }
}

#[test]
fn batch_summary_reports_throughput_and_stage_latencies() {
    let dataset = small_dataset();
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();
    let out = semitri.annotate_batch(&raws, 2);
    let s = &out.summary;
    assert_eq!(s.trajectories, raws.len());
    assert_eq!(
        s.records,
        out.outputs().map(|o| o.cleaned.len()).sum::<usize>()
    );
    assert!(s.records_per_sec > 0.0);
    assert!(s.map_match.p95 >= s.map_match.min);
    assert_eq!(s.worker_trajectories.iter().sum::<usize>(), raws.len());
}

#[test]
fn cli_generate_accepts_threads_flag() {
    let dir = std::env::temp_dir().join(format!("semitri-batch-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("threads.stlog");
    let _ = std::fs::remove_file(&store);

    let out = Command::new(env!("CARGO_BIN_EXE_semitri-cli"))
        .args([
            "generate",
            "phones",
            store.to_str().unwrap(),
            "7",
            "1",
            "--threads",
            "2",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("annotated with 2 worker(s)"), "{stdout}");
    assert!(stdout.contains("records/s"), "{stdout}");
    assert!(stdout.contains("stored"), "{stdout}");
    let _ = std::fs::remove_file(&store);
}
