//! Integration test of the `semitri-cli` binary end to end.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_semitri-cli"))
}

fn temp_store(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("semitri-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn generate_then_query_roundtrip() {
    let store = temp_store("roundtrip.stlog");
    let store_s = store.to_str().unwrap();

    // generate a small phone dataset into a durable store
    let out = cli()
        .args(["generate", "phones", store_s, "7", "1"])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stored"), "{stdout}");

    // info
    let out = cli().args(["info", store_s]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trajectories: 6"), "{stdout}");

    // objects: six users, one trajectory each
    let out = cli().args(["objects", store_s]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 6, "{stdout}");

    // show a trajectory renders the paper's triple notation
    let out = cli().args(["show", store_s, "0"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("→"), "{stdout}");

    // stats table lists every mode and category
    let out = cli().args(["stats", store_s]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("walk"));
    assert!(stdout.contains("item sale"));

    // query-mode returns ids parseable as u64
    let out = cli()
        .args(["query-mode", store_s, "walk"])
        .output()
        .unwrap();
    assert!(out.status.success());
    for line in String::from_utf8_lossy(&out.stdout).lines() {
        line.parse::<u64>().expect("trajectory id");
    }

    // export a KML document
    let kml = temp_store("t0.kml");
    let out = cli()
        .args(["export-kml", store_s, "0", kml.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = std::fs::read_to_string(&kml).unwrap();
    assert!(doc.starts_with("<?xml"));
    assert!(doc.contains("semantic trajectory"));

    // compact leaves state intact
    let out = cli().args(["compact", store_s]).output().unwrap();
    assert!(out.status.success());
    let out = cli().args(["show", store_s, "0"]).output().unwrap();
    assert!(out.status.success());

    let _ = std::fs::remove_file(&store);
    let _ = std::fs::remove_file(&kml);
}

#[test]
fn generate_with_metrics_prints_per_layer_breakdown() {
    let store = temp_store("metrics.stlog");
    let store_s = store.to_str().unwrap();

    let out = cli()
        .args([
            "generate",
            "phones",
            store_s,
            "7",
            "1",
            "--threads",
            "2",
            "--metrics",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    // the per-layer table lists every annotation layer
    assert!(stdout.contains("per-layer breakdown"), "{stdout}");
    for layer in ["episode", "region", "line", "point"] {
        assert!(
            stdout.lines().any(|l| l.trim_start().starts_with(layer)),
            "missing {layer} row in:\n{stdout}"
        );
    }

    // the JSON-lines dump carries the canonical schema
    let json_start = stdout
        .find("metrics (json lines):")
        .expect("json section present");
    let json = &stdout[json_start..];
    for metric in [
        "stage.episode.secs",
        "stage.region.secs",
        "stage.line.secs",
        "stage.point.secs",
        "batch.trajectories",
    ] {
        assert!(json.contains(metric), "missing {metric} in:\n{json}");
    }
    // the json section is a run of one-object lines (later store output
    // follows it)
    let json_lines: Vec<&str> = json
        .lines()
        .skip(1)
        .take_while(|l| l.starts_with('{'))
        .collect();
    assert!(json_lines.len() >= 12, "too few json lines:\n{json}");
    for line in &json_lines {
        assert!(line.ends_with('}'), "not a json object line: {line}");
    }

    let _ = std::fs::remove_file(&store);
}

#[test]
fn raster_burns_density_grids_for_a_preset() {
    let out = cli()
        .args([
            "raster",
            "phones",
            "7",
            "1",
            "--cell",
            "100",
            "--threads",
            "2",
            "--top",
            "3",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("raster "), "{stdout}");
    assert!(stdout.contains("burned "), "{stdout}");
    // the unconditional layer is always present, and at least one mode and
    // one landuse layer got fixes on a healthy preset
    assert!(
        stdout.lines().any(|l| l.trim_start().starts_with("total")),
        "{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.trim_start().starts_with("mode/")),
        "{stdout}"
    );
    assert!(
        stdout
            .lines()
            .any(|l| l.trim_start().starts_with("landuse/")),
        "{stdout}"
    );
    assert!(stdout.contains("top 3 cells"), "{stdout}");

    // unknown preset is a usage error
    let out = cli().args(["raster", "nope"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = cli().output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = cli()
        .args(["generate", "nope", "/tmp/x.stlog"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let store = temp_store("missing-query.stlog");
    let out = cli()
        .args(["show", store.to_str().unwrap(), "999"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let _ = std::fs::remove_file(&store);
}
