//! Frozen-vs-dynamic backend identity, end to end.
//!
//! The frozen R*-tree snapshot promises *bit-identical* query results —
//! values and visit order — to the dynamic tree it was built from. The
//! index-level property suite proves that per query; this suite proves the
//! consequence the pipeline relies on: annotating a whole fleet through
//! `IndexMode::Frozen` (the default) produces byte-identical semantic
//! output to `IndexMode::Dynamic` across every layer, sequentially and
//! through the multi-threaded batch engine.

use semitri::prelude::*;

fn config(mode: IndexMode, vehicles: bool) -> PipelineConfig {
    config_with_oracle(mode, OracleMode::default(), vehicles)
}

fn config_with_oracle(mode: IndexMode, oracle: OracleMode, vehicles: bool) -> PipelineConfig {
    let base = if vehicles {
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            policy: Box::new(VelocityPolicy::vehicles()),
            ..PipelineConfig::default()
        }
    } else {
        PipelineConfig::default()
    };
    PipelineConfig {
        index_mode: mode,
        oracle_mode: oracle,
        ..base
    }
}

/// The semantic payload of one output, rendered for comparison — every
/// field except the wall-clock latency profile (timings differ run to
/// run; everything else must not differ by a byte).
fn semantic_repr(out: &PipelineOutput) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        out.cleaned.records(),
        out.episodes,
        out.region_tuples,
        out.move_routes,
        out.stop_annotations,
        out.sst,
        out.cleaning,
    )
}

#[test]
fn sequential_annotation_is_identical_across_backends() {
    let dataset = lausanne_taxis(1, 99);
    let frozen = SeMiTri::new(&dataset.city, config(IndexMode::Frozen, true));
    let dynamic = SeMiTri::new(&dataset.city, config(IndexMode::Dynamic, true));
    assert!(!dataset.tracks.is_empty());
    for track in &dataset.tracks {
        let raw = track.to_raw();
        let f = frozen.annotate(&raw);
        let d = dynamic.annotate(&raw);
        assert_eq!(
            semantic_repr(&f),
            semantic_repr(&d),
            "trajectory {} diverged between backends",
            track.trajectory_id
        );
    }
}

#[test]
fn multimodal_fleet_is_identical_across_backends() {
    // pedestrians exercise the point layer (stops + POI resolution) much
    // harder than taxis do
    let dataset = smartphone_users(2, 2, 7);
    let frozen = SeMiTri::new(&dataset.city, config(IndexMode::Frozen, false));
    let dynamic = SeMiTri::new(&dataset.city, config(IndexMode::Dynamic, false));
    let mut stops_seen = 0usize;
    for track in &dataset.tracks {
        let raw = track.to_raw();
        let f = frozen.annotate(&raw);
        let d = dynamic.annotate(&raw);
        stops_seen += f.stop_annotations.len();
        assert_eq!(semantic_repr(&f), semantic_repr(&d));
    }
    assert!(stops_seen > 0, "fixture must exercise the point layer");
}

#[test]
fn index_and_oracle_mode_matrix_is_identical_end_to_end() {
    // The full backend matrix: {frozen, dynamic} × {precomputed oracle
    // (default margin), tight-margin oracle, oracle disabled}. Every
    // combination must produce byte-identical semantic output — the
    // oracle is a pure query-plan change. The tight 60 m margin forces
    // real beyond-margin tree fallbacks on tracks leaving the city core.
    let dataset = smartphone_users(2, 1, 5);
    let modes = [IndexMode::Frozen, IndexMode::Dynamic];
    let oracles = [
        OracleMode::default(),
        OracleMode::Precomputed { margin_m: 60.0 },
        OracleMode::Disabled,
    ];
    let mut pipelines = Vec::new();
    for &mode in &modes {
        for &oracle in &oracles {
            pipelines.push(SeMiTri::new(
                &dataset.city,
                config_with_oracle(mode, oracle, false),
            ));
        }
    }
    for track in &dataset.tracks {
        let raw = track.to_raw();
        let reference = semantic_repr(&pipelines[0].annotate(&raw));
        for (i, p) in pipelines.iter().enumerate().skip(1) {
            assert_eq!(
                reference,
                semantic_repr(&p.annotate(&raw)),
                "trajectory {} diverged in matrix cell {i}",
                track.trajectory_id
            );
        }
    }
}

#[test]
fn batch_engine_is_identical_across_backends_and_threads() {
    let dataset = lausanne_taxis(1, 42);
    let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();
    let frozen = SeMiTri::new(&dataset.city, config(IndexMode::Frozen, true));
    let dynamic = SeMiTri::new(&dataset.city, config(IndexMode::Dynamic, true));
    let f = BatchAnnotator::new(&frozen)
        .with_threads(4)
        .annotate_all(&raws);
    let d = BatchAnnotator::new(&dynamic)
        .with_threads(1)
        .annotate_all(&raws);
    assert_eq!(f.results.len(), d.results.len());
    for (i, (rf, rd)) in f.results.iter().zip(&d.results).enumerate() {
        let (of, od) = (rf.as_ref().unwrap(), rd.as_ref().unwrap());
        assert_eq!(semantic_repr(of), semantic_repr(od), "slot {i} diverged");
    }
}

#[test]
fn streaming_annotator_agrees_with_frozen_batch_regions() {
    // the streaming annotator builds its own (frozen) indexes; feeding it
    // a track must produce stop/move events, proving the frozen read path
    // works incrementally too
    let dataset = smartphone_users(1, 1, 3);
    let mut streamer = semitri::core::StreamingAnnotator::new(
        &dataset.city,
        VelocityPolicy::default(),
        MatchParams::default(),
        ModeInferencer::default(),
        semitri::core::point::PointParams::default(),
    );
    let mut events = 0usize;
    for rec in &dataset.tracks[0].records {
        events += streamer.push(*rec).len();
    }
    events += streamer.flush().len();
    assert!(events > 0, "stream produced no episodes");
}

/// The corner of the city farthest from every fix of `raw`, inset from
/// the boundary so landuse cells and region rectangles around it stay
/// inside the city. Returns `(corner, min_distance_to_track)`.
fn farthest_corner(bounds: &Rect, raw: &RawTrajectory) -> (Point, f64) {
    let inset = 60.0;
    let corners = [
        Point::new(bounds.min_x + inset, bounds.min_y + inset),
        Point::new(bounds.max_x - inset, bounds.min_y + inset),
        Point::new(bounds.min_x + inset, bounds.max_y - inset),
        Point::new(bounds.max_x - inset, bounds.max_y - inset),
    ];
    corners
        .into_iter()
        .map(|c| {
            let d = raw
                .records()
                .iter()
                .map(|r| r.point.distance(c))
                .fold(f64::INFINITY, f64::min);
            (c, d)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap()
}

/// Map edits clustered around `at`, none of which can perturb annotation
/// far away: a disconnected road segment, a landuse recategorization of
/// one cell, and a named region. (Deliberately no `AddPoi` — POIs enter
/// the *global* category prior of the point layer's HMM, so a new POI
/// anywhere may legally shift stop inference everywhere.)
fn local_mutations(at: Point, current_landuse: LanduseCategory) -> Vec<Mutation> {
    let relabel = if current_landuse == LanduseCategory::Lake {
        LanduseCategory::Glacier
    } else {
        LanduseCategory::Lake
    };
    vec![
        Mutation::AddRoad {
            from: at,
            to: Point::new(at.x - 400.0, at.y),
            class: RoadClass::Street,
            bus_route: false,
            name: "swap lane".into(),
        },
        Mutation::SetLanduse {
            at,
            category: relabel,
        },
        Mutation::AddRegion {
            name: "swap yard".into(),
            kind: RegionKind::Market,
            bounds: Rect::new(at.x - 150.0, at.y - 150.0, at.x + 150.0, at.y + 150.0),
        },
    ]
}

/// A synthetic trajectory dwelling at `at` for twenty minutes — long
/// enough for any segmentation policy to cut a stop episode there.
fn dwell_at(at: Point, object_id: u64) -> RawTrajectory {
    let records: Vec<GpsRecord> = (0..40)
        .map(|i| {
            let jitter = (i % 3) as f64 * 1.5;
            GpsRecord::new(
                Point::new(at.x + jitter, at.y - jitter),
                Timestamp(8.0 * 3_600.0 + i as f64 * 30.0),
            )
        })
        .collect();
    RawTrajectory::new(object_id, object_id, records)
}

/// The tentpole generation-swap property, across the full annotation
/// matrix: {sequential, batch, streaming × swap-mid-feed} × {oracle
/// enabled, oracle disabled}.
///
/// The edits are clustered in the city corner farthest from the probe
/// trajectory, so generations N and N+1 must agree byte-for-byte on the
/// probe — which is exactly what lets a mid-feed swap promise anything:
/// a trajectory annotated *across* the swap must equal one annotated
/// wholly on generation N+1 once the swap quiesces. A second trajectory
/// dwelling inside the edited corner proves the swap is real (its
/// annotation differs between generations).
#[test]
fn annotation_across_a_generation_swap_matches_pure_next_generation() {
    for oracle in [OracleMode::default(), OracleMode::Disabled] {
        let dataset = lausanne_taxis(1, 42);
        let probe = dataset.tracks[0].to_raw();
        let (far, clearance) = farthest_corner(&dataset.city.bounds(), &probe);
        assert!(
            clearance > 1_500.0,
            "probe track comes within {clearance:.0} m of every corner; \
             the locality argument needs a clear corner"
        );
        let dwell = dwell_at(far, 9_001);
        let landuse_before = dataset.city.landuse.cell_at(far).category;

        let live = LiveSeMiTri::new(
            dataset.city.clone(),
            move || config_with_oracle(IndexMode::Frozen, oracle, true),
            None,
        );
        let pin0 = live.pin();
        assert_eq!(pin0.id(), GenerationId(0));
        let sequential_gen0 = semantic_repr(&live.annotate(&probe));

        // a streaming session opened on generation 0, swapped mid-feed
        let mut across = live.streaming(VelocityPolicy::vehicles());
        assert_eq!(across.generation_id(), Some(GenerationId(0)));
        let records = probe.records();
        let mid = records.len() / 2;
        let mut across_events = Vec::new();
        for r in &records[..mid] {
            across_events.extend(across.push(*r));
        }
        for m in local_mutations(far, landuse_before) {
            live.submit(m).unwrap();
        }
        let outcome = live.publish(); // the swap lands mid-feed
        assert_eq!(outcome.generation, GenerationId(1));
        assert_eq!(outcome.applied, 3);
        for r in &records[mid..] {
            across_events.extend(across.push(*r));
        }
        across_events.extend(across.flush());
        assert_eq!(
            across.generation_id(),
            Some(GenerationId(1)),
            "an episode opened after the swap must pin generation 1"
        );

        // quiesced references, wholly on generation N+1
        let pin1 = live.pin();
        assert_eq!(pin1.id(), GenerationId(1));
        let pure1 = pin1.snapshot();

        // sequential: across-publish annotate == pure-N+1 == pre-swap
        let sequential_gen1 = semantic_repr(&live.annotate(&probe));
        assert_eq!(sequential_gen1, semantic_repr(&pure1.annotate(&probe)));
        assert_eq!(
            sequential_gen0, sequential_gen1,
            "edits {clearance:.0} m away must not perturb the probe"
        );

        // batch: pinned once for the whole batch, equal to pure N+1
        let batch = live.annotate_batch(std::slice::from_ref(&probe), 2);
        let pure_batch = pure1.annotate_batch(std::slice::from_ref(&probe), 1);
        for (a, b) in batch.results.iter().zip(&pure_batch.results) {
            assert_eq!(
                semantic_repr(a.as_ref().unwrap()),
                semantic_repr(b.as_ref().unwrap())
            );
        }

        // streaming: the swapped-mid-feed session's event stream equals a
        // session run wholly on generation N+1
        let mut fresh = live.streaming(VelocityPolicy::vehicles());
        assert_eq!(fresh.generation_id(), Some(GenerationId(1)));
        let mut fresh_events = Vec::new();
        for r in records {
            fresh_events.extend(fresh.push(*r));
        }
        fresh_events.extend(fresh.flush());
        assert_eq!(
            format!("{across_events:?}"),
            format!("{fresh_events:?}"),
            "streaming across the swap diverged from pure generation 1 \
             (oracle {oracle:?})"
        );

        // the swap was real: inside the edited corner the generations
        // disagree (old pins keep the old world, new pins see the edits)
        let dwell0 = semantic_repr(&pin0.snapshot().annotate(&dwell));
        let dwell1 = semantic_repr(&pure1.annotate(&dwell));
        assert_ne!(
            dwell0, dwell1,
            "mutations at the far corner must change annotation there"
        );
        assert!(!pure1.annotate(&dwell).stop_annotations.is_empty());
    }
}
