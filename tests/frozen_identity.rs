//! Frozen-vs-dynamic backend identity, end to end.
//!
//! The frozen R*-tree snapshot promises *bit-identical* query results —
//! values and visit order — to the dynamic tree it was built from. The
//! index-level property suite proves that per query; this suite proves the
//! consequence the pipeline relies on: annotating a whole fleet through
//! `IndexMode::Frozen` (the default) produces byte-identical semantic
//! output to `IndexMode::Dynamic` across every layer, sequentially and
//! through the multi-threaded batch engine.

use semitri::prelude::*;

fn config(mode: IndexMode, vehicles: bool) -> PipelineConfig {
    config_with_oracle(mode, OracleMode::default(), vehicles)
}

fn config_with_oracle(mode: IndexMode, oracle: OracleMode, vehicles: bool) -> PipelineConfig {
    let base = if vehicles {
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            policy: Box::new(VelocityPolicy::vehicles()),
            ..PipelineConfig::default()
        }
    } else {
        PipelineConfig::default()
    };
    PipelineConfig {
        index_mode: mode,
        oracle_mode: oracle,
        ..base
    }
}

/// The semantic payload of one output, rendered for comparison — every
/// field except the wall-clock latency profile (timings differ run to
/// run; everything else must not differ by a byte).
fn semantic_repr(out: &PipelineOutput) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        out.cleaned.records(),
        out.episodes,
        out.region_tuples,
        out.move_routes,
        out.stop_annotations,
        out.sst,
        out.cleaning,
    )
}

#[test]
fn sequential_annotation_is_identical_across_backends() {
    let dataset = lausanne_taxis(1, 99);
    let frozen = SeMiTri::new(&dataset.city, config(IndexMode::Frozen, true));
    let dynamic = SeMiTri::new(&dataset.city, config(IndexMode::Dynamic, true));
    assert!(!dataset.tracks.is_empty());
    for track in &dataset.tracks {
        let raw = track.to_raw();
        let f = frozen.annotate(&raw);
        let d = dynamic.annotate(&raw);
        assert_eq!(
            semantic_repr(&f),
            semantic_repr(&d),
            "trajectory {} diverged between backends",
            track.trajectory_id
        );
    }
}

#[test]
fn multimodal_fleet_is_identical_across_backends() {
    // pedestrians exercise the point layer (stops + POI resolution) much
    // harder than taxis do
    let dataset = smartphone_users(2, 2, 7);
    let frozen = SeMiTri::new(&dataset.city, config(IndexMode::Frozen, false));
    let dynamic = SeMiTri::new(&dataset.city, config(IndexMode::Dynamic, false));
    let mut stops_seen = 0usize;
    for track in &dataset.tracks {
        let raw = track.to_raw();
        let f = frozen.annotate(&raw);
        let d = dynamic.annotate(&raw);
        stops_seen += f.stop_annotations.len();
        assert_eq!(semantic_repr(&f), semantic_repr(&d));
    }
    assert!(stops_seen > 0, "fixture must exercise the point layer");
}

#[test]
fn index_and_oracle_mode_matrix_is_identical_end_to_end() {
    // The full backend matrix: {frozen, dynamic} × {precomputed oracle
    // (default margin), tight-margin oracle, oracle disabled}. Every
    // combination must produce byte-identical semantic output — the
    // oracle is a pure query-plan change. The tight 60 m margin forces
    // real beyond-margin tree fallbacks on tracks leaving the city core.
    let dataset = smartphone_users(2, 1, 5);
    let modes = [IndexMode::Frozen, IndexMode::Dynamic];
    let oracles = [
        OracleMode::default(),
        OracleMode::Precomputed { margin_m: 60.0 },
        OracleMode::Disabled,
    ];
    let mut pipelines = Vec::new();
    for &mode in &modes {
        for &oracle in &oracles {
            pipelines.push(SeMiTri::new(
                &dataset.city,
                config_with_oracle(mode, oracle, false),
            ));
        }
    }
    for track in &dataset.tracks {
        let raw = track.to_raw();
        let reference = semantic_repr(&pipelines[0].annotate(&raw));
        for (i, p) in pipelines.iter().enumerate().skip(1) {
            assert_eq!(
                reference,
                semantic_repr(&p.annotate(&raw)),
                "trajectory {} diverged in matrix cell {i}",
                track.trajectory_id
            );
        }
    }
}

#[test]
fn batch_engine_is_identical_across_backends_and_threads() {
    let dataset = lausanne_taxis(1, 42);
    let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();
    let frozen = SeMiTri::new(&dataset.city, config(IndexMode::Frozen, true));
    let dynamic = SeMiTri::new(&dataset.city, config(IndexMode::Dynamic, true));
    let f = BatchAnnotator::new(&frozen)
        .with_threads(4)
        .annotate_all(&raws);
    let d = BatchAnnotator::new(&dynamic)
        .with_threads(1)
        .annotate_all(&raws);
    assert_eq!(f.results.len(), d.results.len());
    for (i, (rf, rd)) in f.results.iter().zip(&d.results).enumerate() {
        let (of, od) = (rf.as_ref().unwrap(), rd.as_ref().unwrap());
        assert_eq!(semantic_repr(of), semantic_repr(od), "slot {i} diverged");
    }
}

#[test]
fn streaming_annotator_agrees_with_frozen_batch_regions() {
    // the streaming annotator builds its own (frozen) indexes; feeding it
    // a track must produce stop/move events, proving the frozen read path
    // works incrementally too
    let dataset = smartphone_users(1, 1, 3);
    let mut streamer = semitri::core::StreamingAnnotator::new(
        &dataset.city,
        VelocityPolicy::default(),
        MatchParams::default(),
        ModeInferencer::default(),
        semitri::core::point::PointParams::default(),
    );
    let mut events = 0usize;
    for rec in &dataset.tracks[0].records {
        events += streamer.push(*rec).len();
    }
    events += streamer.flush().len();
    assert!(events > 0, "stream produced no episodes");
}
