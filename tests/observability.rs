//! Cross-path observability: the sequential pipeline, the streaming
//! annotator and the batch pool must report per-layer spans under one
//! metric schema (`stage.<layer>.{secs,records,calls}`), with record
//! counts that agree wherever the paths process the same work.

use semitri::core::line::matcher::MatchParams;
use semitri::core::point::PointParams;
use semitri::core::streaming::StreamingAnnotator;
use semitri::prelude::*;
use std::sync::Arc;

/// The `stage.*` histogram names present in a snapshot.
fn stage_histograms(snapshot: &MetricsSnapshot) -> Vec<String> {
    snapshot
        .histograms
        .keys()
        .filter(|k| k.starts_with("stage."))
        .cloned()
        .collect()
}

/// Every histogram in the snapshot must have ordered quantiles bracketed
/// by its exact extremes.
fn assert_quantiles_ordered(snapshot: &MetricsSnapshot) {
    for (name, h) in &snapshot.histograms {
        if h.count == 0 {
            continue;
        }
        let qs = [h.min, h.p50(), h.p95(), h.p99(), h.max];
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "{name}: quantiles out of order {qs:?}");
        }
        assert!(
            h.min <= h.mean() && h.mean() <= h.max,
            "{name}: mean outside [min,max]"
        );
    }
}

#[test]
fn sequential_and_batch_report_identical_schema_and_counts() {
    let dataset = smartphone_users(3, 1, 11);
    let raws: Vec<RawTrajectory> = dataset.tracks.iter().map(|t| t.to_raw()).collect();

    // sequential path with a MetricsObserver installed
    let registry = Arc::new(MetricsRegistry::new());
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default())
        .with_observer(Arc::new(MetricsObserver::new(registry.clone())));
    let mut seq_records = [0u64; 4];
    for raw in &raws {
        let out = semitri.annotate(raw);
        for stage in Stage::ALL {
            seq_records[stage.index()] += out.stage_records(stage) as u64;
        }
    }
    let seq = registry.snapshot();

    // batch path over the same fleet (its own per-run registry, observer-free
    // pipeline so the two snapshots stay independent)
    let plain = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let batch = BatchAnnotator::new(&plain)
        .with_threads(2)
        .annotate_all(&raws);
    let bm = &batch.summary.metrics;

    // identical per-stage schema
    assert_eq!(stage_histograms(&seq), stage_histograms(bm));
    for stage in Stage::ALL {
        // every trajectory contributes exactly one span per stage, on
        // both paths
        let n = raws.len() as u64;
        assert_eq!(seq.histogram(stage.secs_metric()).unwrap().count, n);
        assert_eq!(bm.histogram(stage.secs_metric()).unwrap().count, n);
        assert_eq!(seq.counter(stage.calls_metric()), n);
        assert_eq!(bm.counter(stage.calls_metric()), n);

        // the pipeline is deterministic: record counts agree exactly
        // between the observer, the snapshot counters and the summary
        let expected = seq_records[stage.index()];
        assert_eq!(seq.counter(stage.records_metric()), expected, "{stage}");
        assert_eq!(bm.counter(stage.records_metric()), expected, "{stage}");
        assert_eq!(batch.summary.stage(stage).records, expected, "{stage}");
        assert_eq!(batch.summary.stage(stage).count, n, "{stage}");
    }

    // batch-only bookkeeping
    assert_eq!(bm.counter("batch.trajectories"), raws.len() as u64);
    assert_eq!(bm.counter("batch.failures"), 0);
    assert_eq!(
        bm.histogram("batch.trajectory.secs").unwrap().count,
        raws.len() as u64
    );

    assert_quantiles_ordered(&seq);
    assert_quantiles_ordered(bm);
}

#[test]
fn streaming_reports_the_same_stage_schema() {
    let dataset = smartphone_users(1, 1, 99);
    let track = &dataset.tracks[0];

    let registry = Arc::new(MetricsRegistry::new());
    let mut stream = StreamingAnnotator::new(
        &dataset.city,
        VelocityPolicy::default(),
        MatchParams::default(),
        ModeInferencer::default(),
        PointParams::default(),
    )
    .with_observer(Arc::new(MetricsObserver::new(registry.clone())));

    for &record in &track.records {
        stream.push(record);
    }
    stream.flush();
    let snap = registry.snapshot();

    // same stage names as the offline paths — the MetricsObserver schema
    // is canonical regardless of which annotator drives it
    let expected: Vec<String> = Stage::ALL.map(|s| s.secs_metric().to_string()).into();
    let mut got = stage_histograms(&snap);
    got.retain(|k| k.ends_with(".secs"));
    assert_eq!(got, {
        let mut e = expected.clone();
        e.sort();
        e
    });

    for stage in Stage::ALL {
        let h = snap.histogram(stage.secs_metric()).unwrap();
        // a day with dwells and trips exercises every layer at least once
        assert!(h.count > 0, "{stage} never fired");
        // one span per histogram sample
        assert_eq!(snap.counter(stage.calls_metric()), h.count, "{stage}");
    }

    // episode spans cover at most the records fed (cleaning may drop some,
    // and the tail segment may still be open at flush)
    assert!(snap.counter(Stage::Episode.records_metric()) <= track.records.len() as u64);
    assert!(snap.counter(Stage::Episode.records_metric()) > 0);

    assert_quantiles_ordered(&snap);
}
