//! End-to-end integration: dataset presets → full pipeline → analytics.

use semitri::core::pipeline::compression_ratio;
use semitri::prelude::*;

#[test]
fn taxi_day_end_to_end() {
    let dataset = lausanne_taxis(1, 99);
    assert_eq!(dataset.tracks.len(), 2);
    let semitri = SeMiTri::new(
        &dataset.city,
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            policy: Box::new(VelocityPolicy::vehicles()),
            ..PipelineConfig::default()
        },
    );

    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());
        // episodes partition the cleaned records
        assert_eq!(out.episodes.first().map(|e| e.start), Some(0));
        assert_eq!(out.episodes.last().map(|e| e.end), Some(out.cleaned.len()));
        // landuse covers the whole city: every record annotated
        let covered: usize = out.region_tuples.iter().map(|t| t.record_count()).sum();
        assert_eq!(covered, out.cleaned.len());
        // heavy compression, as the paper reports (99.7% on real taxis
        // counting distinct cells over 5 months; our single synthetic day
        // still compresses > 85% even tuple-by-tuple)
        assert!(
            compression_ratio(out.cleaned.len(), out.region_tuples.len()) > 0.85,
            "{} records → {} tuples",
            out.cleaned.len(),
            out.region_tuples.len()
        );
        // the paper's distinct-cell measure compresses even harder
        let mut distinct: Vec<u64> = out.region_tuples.iter().map(|t| t.place.id).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(compression_ratio(out.cleaned.len(), distinct.len()) > 0.9);
        // taxi modes must be vehicle-flavored
        for (_, entries) in &out.move_routes {
            for e in entries {
                assert_ne!(e.mode, Some(TransportMode::Metro));
            }
        }
        // SST is time-ordered and non-trivial
        assert!(out.sst.len() >= out.episodes.len());
        for w in out.sst.tuples.windows(2) {
            assert!(w[0].span.start.0 <= w[1].span.start.0);
        }
    }
}

#[test]
fn smartphone_week_multimodal_annotation() {
    let dataset = smartphone_users(2, 3, 5);
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());

    let mut modes_seen = std::collections::HashSet::new();
    let mut stops_annotated = 0usize;
    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());
        for (_, entries) in &out.move_routes {
            for e in entries {
                if let Some(m) = e.mode {
                    modes_seen.insert(m.label());
                }
            }
        }
        stops_annotated += out.stop_annotations.len();
    }
    assert!(
        modes_seen.len() >= 2,
        "expected multi-modal annotation, saw {modes_seen:?}"
    );
    assert!(stops_annotated > 0);
}

#[test]
fn mode_inference_recovers_ground_truth_majority() {
    // the simulator records true modes; the pipeline's inferred per-record
    // modes should agree on a solid majority of matched move records
    let dataset = smartphone_users(2, 2, 31);
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());

    let mut agree = 0usize;
    let mut total = 0usize;
    for track in &dataset.tracks {
        // map cleaned-record indexes back to original records by timestamp
        let out = semitri.annotate(&track.to_raw());
        // build a timestamp → truth-mode lookup (timestamps are unique per
        // track by construction)
        let mut truth_by_time: std::collections::HashMap<u64, TransportMode> =
            std::collections::HashMap::new();
        for (r, t) in track.records.iter().zip(&track.truth) {
            if let Some(m) = t.mode {
                truth_by_time.insert(r.t.0.to_bits(), m);
            }
        }
        for (ep_idx, entries) in &out.move_routes {
            let ep = &out.episodes[*ep_idx];
            let slice = &out.cleaned.records()[ep.start..ep.end];
            for e in entries {
                let Some(inferred) = e.mode else { continue };
                for r in &slice[e.start..e.end] {
                    if let Some(&truth) = truth_by_time.get(&r.t.0.to_bits()) {
                        total += 1;
                        if truth == inferred {
                            agree += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(total > 100, "too few matched records: {total}");
    let rate = agree as f64 / total as f64;
    assert!(rate > 0.5, "mode agreement {rate:.2} over {total} records");
}

#[test]
fn trajectory_identification_splits_dataset_stream() {
    // concatenate two days of one user and let the identifier split them
    let dataset = smartphone_users(1, 2, 77);
    let mut all: Vec<GpsRecord> = dataset
        .tracks
        .iter()
        .flat_map(|t| t.records.iter().copied())
        .collect();
    all.sort_by(|a, b| a.t.0.partial_cmp(&b.t.0).unwrap());
    let identifier = TrajectoryIdentifier::default();
    let trajs = identifier.identify(0, 0, &all);
    assert!(
        trajs.len() >= 2,
        "expected daily split, got {}",
        trajs.len()
    );
    for t in &trajs {
        assert!(t.len() >= identifier.min_records);
    }
}

#[test]
fn analytics_trajectory_classification_runs() {
    let dataset = milan_cars(3, 1, 13);
    let semitri = SeMiTri::new(
        &dataset.city,
        PipelineConfig {
            mode: ModeInferencer {
                allow_car: true,
                ..ModeInferencer::default()
            },
            ..PipelineConfig::default()
        },
    );
    let mut classified = 0usize;
    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());
        let pairs: Vec<_> = out
            .stop_annotations
            .iter()
            .map(|(i, a)| (&out.episodes[*i], a))
            .collect();
        if let Some(cat) = trajectory_category(&pairs) {
            assert!(PoiCategory::ALL.contains(&cat));
            classified += 1;
        }
    }
    assert!(classified > 0, "no trajectory classified");
}
