//! Integration: pipeline output persisted through the durable store and
//! replayed.

use semitri::prelude::*;
use semitri::store::export::{kml_document, raw_trajectory_kml, sst_kml};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("semitri-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn pipeline_to_durable_store_and_back() {
    let dataset = lausanne_taxis(1, 7);
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let path = temp_path("pipeline.stlog");
    let _ = std::fs::remove_file(&path);

    let mut expected = Vec::new();
    {
        let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
        for track in &dataset.tracks {
            let out = semitri.annotate(&track.to_raw());
            store
                .put_trajectory(TrajectoryMeta {
                    trajectory_id: track.trajectory_id,
                    object_id: track.object_id,
                    record_count: out.cleaned.len() as u64,
                })
                .unwrap();
            store
                .put_episodes(track.trajectory_id, &out.episodes)
                .unwrap();
            store.put_sst(&out.sst).unwrap();
            expected.push((track.trajectory_id, out.sst.clone(), out.episodes.len()));
        }
    }

    // reopen: everything replays identically
    let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
    let (n_traj, n_eps, n_sst) = store.counts();
    assert_eq!(n_traj, dataset.tracks.len());
    assert_eq!(n_sst, dataset.tracks.len());
    assert_eq!(n_eps, expected.iter().map(|(_, _, n)| n).sum::<usize>());
    for (id, sst, _) in &expected {
        assert_eq!(&store.get_sst(*id).unwrap(), sst);
    }

    // spatial query returns episodes within the city bounds
    let hits = store.episodes_in_rect(&dataset.city.bounds());
    assert_eq!(hits.len(), n_eps);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn store_queries_by_object_and_time() {
    let dataset = milan_cars(2, 1, 3);
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let store = SemanticTrajectoryStore::in_memory();

    for track in &dataset.tracks {
        let out = semitri.annotate(&track.to_raw());
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: track.trajectory_id,
                object_id: track.object_id,
                record_count: out.cleaned.len() as u64,
            })
            .unwrap();
        store
            .put_episodes(track.trajectory_id, &out.episodes)
            .unwrap();
    }

    // per-object lookup
    for track in &dataset.tracks {
        let ids = store.trajectories_of(track.object_id);
        assert!(ids.contains(&track.trajectory_id));
    }

    // time-range query: a window covering everything returns all episodes
    let all = store.episodes_in_time(TimeSpan::new(Timestamp(0.0), Timestamp(10.0 * 86_400.0)));
    let (_, n_eps, _) = store.counts();
    assert_eq!(all.len(), n_eps);

    // an empty window before the data returns nothing
    let none = store.episodes_in_time(TimeSpan::new(Timestamp(-100.0), Timestamp(-1.0)));
    assert!(none.is_empty());
}

#[test]
fn kml_export_of_annotated_day() {
    let dataset = smartphone_users(1, 1, 9);
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let track = &dataset.tracks[0];
    let out = semitri.annotate(&track.to_raw());

    let projection = LocalProjection::new(GeoPoint::new(6.6323, 46.5197));
    let doc = kml_document(
        "semitri export",
        &[
            raw_trajectory_kml(&out.cleaned, &projection),
            sst_kml(&out.sst),
        ],
    );
    assert!(doc.starts_with("<?xml"));
    assert!(doc.contains("<LineString>"));
    assert!(doc.contains("semantic trajectory"));
    // modes from the line layer appear in descriptions
    assert!(doc.contains("mode="), "no mode annotations in:\n{doc}");
}

#[test]
fn hostile_length_prefixes_fail_without_overallocating() {
    use semitri::store::codec::Decoder;

    // a 4-byte prefix promising ~200 MB over a 3-byte payload: the
    // decoder must fail with UnexpectedEof after reading the 3 real
    // bytes, not pre-allocate the promised 200 MB
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&200_000_000u32.to_le_bytes());
    hostile.extend_from_slice(b"abc");
    let mut dec = Decoder::new(hostile.as_slice());
    let err = dec.string().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

    // prefixes past the hard cap are rejected before any read at all
    let mut absurd = Vec::new();
    absurd.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut dec = Decoder::new(absurd.as_slice());
    let err = dec.string().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn corrupt_durable_log_is_rejected_on_replay() {
    let dataset = lausanne_taxis(1, 11);
    let semitri = SeMiTri::new(&dataset.city, PipelineConfig::default());
    let path = temp_path("corrupt.stlog");
    let _ = std::fs::remove_file(&path);
    {
        let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
        let track = &dataset.tracks[0];
        let out = semitri.annotate(&track.to_raw());
        store
            .put_trajectory(TrajectoryMeta {
                trajectory_id: track.trajectory_id,
                object_id: track.object_id,
                record_count: out.cleaned.len() as u64,
            })
            .unwrap();
        store.put_sst(&out.sst).unwrap();
    }

    let pristine = std::fs::read(&path).unwrap();
    assert!(pristine.len() > 64, "log unexpectedly small");

    // truncation mid-record: replay must error, not panic or hang
    std::fs::write(&path, &pristine[..pristine.len() - 7]).unwrap();
    assert!(SemanticTrajectoryStore::open_durable(&path).is_err());

    // hostile appended record: an SST record whose tuple-count prefix
    // claims 200 million entries backed by zero bytes. Replay must fail
    // cleanly (an error, quickly) instead of pre-allocating what the
    // prefix claims — this is the regression for the untrusted-length
    // `Vec::with_capacity` in the SST replay path
    let mut corrupt = pristine.clone();
    corrupt.push(3); // REC_SST
    corrupt.extend_from_slice(&77u64.to_le_bytes()); // trajectory id
    corrupt.extend_from_slice(&77u64.to_le_bytes()); // object id
    corrupt.extend_from_slice(&200_000_000u32.to_le_bytes()); // tuple count
    std::fs::write(&path, &corrupt).unwrap();
    assert!(SemanticTrajectoryStore::open_durable(&path).is_err());

    // an unknown record tag is rejected as corruption
    let mut unknown = pristine.clone();
    unknown.push(0xfe);
    std::fs::write(&path, &unknown).unwrap();
    assert!(SemanticTrajectoryStore::open_durable(&path).is_err());

    // the pristine bytes still replay
    std::fs::write(&path, &pristine).unwrap();
    let store = SemanticTrajectoryStore::open_durable(&path).unwrap();
    let (n_traj, _, n_sst) = store.counts();
    assert_eq!((n_traj, n_sst), (1, 1));
    std::fs::remove_file(&path).unwrap();
}
